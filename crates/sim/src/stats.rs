//! Streaming statistics used by the elastic-storage policies (99th-percentile
//! trackers) and by the experiment harness (latency distributions, time
//! series).

use crate::time::SimTime;

/// A bounded-window sample tracker with percentile queries.
///
/// GROUTER's elastic storage characterises each function with the 99th
/// percentiles of request interval (`R_window`), intermediate data size
/// (`R_size`) and concurrency (`R_con`) (paper §4.4.1, Fig. 11a). These are
/// computed over a sliding window of recent observations.
#[derive(Clone, Debug)]
pub struct WindowedPercentile {
    window: usize,
    samples: Vec<f64>,
    cursor: usize,
    filled: bool,
    /// Sorted copy of `samples`, rebuilt lazily on quantile queries. The
    /// pre-warm scaler reads three p99s per pool resize, several resizes per
    /// data operation — cloning and sorting the window each time dominated
    /// the end-to-end profile.
    sorted: Vec<f64>,
    dirty: bool,
}

impl WindowedPercentile {
    /// Create a tracker remembering the most recent `window` samples.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        WindowedPercentile {
            window,
            // Lazily grown: most trackers (one per function × signal × GPU)
            // see far fewer samples than the window bound, and eager 256-slot
            // buffers made tracker creation the hottest part of arrivals.
            samples: Vec::new(),
            cursor: 0,
            filled: false,
            sorted: Vec::new(),
            dirty: false,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        if self.samples.len() < self.window {
            self.samples.push(value);
            if self.samples.len() == self.window {
                self.filled = true;
            }
        } else {
            self.samples[self.cursor] = value;
            self.cursor = (self.cursor + 1) % self.window;
        }
        self.dirty = true;
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (q in [0, 1]) over the window, or `None` when empty.
    ///
    /// Uses the nearest-rank method, which matches how serverless pre-warming
    /// policies read "the 99th percentile" of a small histogram.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if self.dirty || self.sorted.len() != self.samples.len() {
            self.sorted.clear();
            self.sorted.extend_from_slice(&self.samples);
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.dirty = false;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Mean over the window, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

/// An unbounded latency/throughput sample collector for experiment reporting.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Quantile by nearest rank; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// All recorded samples (read-only), for CDF plotting.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A `(time, value)` series, e.g. idle GPU memory over a trace (Fig. 7a).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point. Timestamps must be non-decreasing; out-of-order points
    /// are clamped to the previous timestamp so the series stays monotone.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let t = match self.points.last() {
            Some(&(prev, _)) if t < prev => prev,
            _ => t,
        };
        self.points.push((t, value));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Down-sample to at most `n` evenly spaced points (for printing).
    pub fn resample(&self, n: usize) -> Vec<(SimTime, f64)> {
        if self.points.len() <= n || n == 0 {
            return self.points.clone();
        }
        let step = self.points.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.points[(i as f64 * step) as usize])
            .collect()
    }

    /// Minimum value over the series.
    pub fn min_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Maximum value over the series.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Time-weighted average value over the series.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return self.points.first().map(|&(_, v)| v);
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for pair in self.points.windows(2) {
            let dt = (pair[1].0 - pair[0].0).as_secs_f64();
            area += pair[0].1 * dt;
            span += dt;
        }
        if span == 0.0 {
            Some(self.points[0].1)
        } else {
            Some(area / span)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_percentile_basics() {
        let mut w = WindowedPercentile::new(100);
        assert!(w.p99().is_none());
        for i in 1..=100 {
            w.record(i as f64);
        }
        assert_eq!(w.p99(), Some(99.0));
        assert_eq!(w.quantile(0.5), Some(50.0));
        assert_eq!(w.quantile(1.0), Some(100.0));
        assert_eq!(w.quantile(0.0), Some(1.0));
        assert_eq!(w.mean(), Some(50.5));
    }

    #[test]
    fn windowed_percentile_evicts_oldest() {
        let mut w = WindowedPercentile::new(3);
        for v in [100.0, 1.0, 2.0, 3.0] {
            w.record(v);
        }
        // 100.0 fell out of the window.
        assert_eq!(w.quantile(1.0), Some(3.0));
        assert_eq!(w.len(), 3);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_panics() {
        let _ = WindowedPercentile::new(0);
    }

    #[test]
    fn summary_quantiles() {
        let mut s = Summary::new();
        for i in 1..=1000 {
            s.record(i as f64);
        }
        assert_eq!(s.p50(), 500.0);
        assert_eq!(s.p99(), 990.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 1000.0);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert_eq!(s.p99(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn timeseries_resample_and_stats() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.record(SimTime(i * 10), i as f64);
        }
        assert_eq!(ts.resample(5).len(), 5);
        assert_eq!(ts.min_value(), Some(0.0));
        assert_eq!(ts.max_value(), Some(9.0));
    }

    #[test]
    fn timeseries_clamps_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime(100), 1.0);
        ts.record(SimTime(50), 2.0); // clamped to t=100
        assert_eq!(ts.points()[1].0, SimTime(100));
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime(0), 10.0);
        ts.record(SimTime(90), 0.0);
        ts.record(SimTime(100), 0.0);
        // 10.0 held for 90 ns, 0.0 for 10 ns → mean 9.0
        assert!((ts.time_weighted_mean().unwrap() - 9.0).abs() < 1e-9);
    }
}

impl Summary {
    /// `n` evenly spaced CDF points `(value, fraction ≤ value)` — the shape
    /// the paper's distribution figures (e.g. Fig. 18a) plot.
    pub fn cdf_points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || n == 0 {
            return Vec::new();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        (1..=n)
            .map(|k| {
                let q = k as f64 / n as f64;
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                (sorted[rank - 1], q)
            })
            .collect()
    }

    /// Comma-separated `value,cdf` lines for external plotting.
    pub fn cdf_csv(&self, n: usize) -> String {
        let mut out = String::from("value,cdf\n");
        for (v, q) in self.cdf_points(n) {
            out.push_str(&format!("{v},{q}\n"));
        }
        out
    }
}

impl TimeSeries {
    /// Comma-separated `seconds,value` lines for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("seconds,value\n");
        for &(t, v) in &self.points {
            out.push_str(&format!("{},{v}\n", t.as_secs_f64()));
        }
        out
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn cdf_points_are_monotone_and_cover_range() {
        let mut s = Summary::new();
        for i in 1..=100 {
            s.record(i as f64);
        }
        let cdf = s.cdf_points(10);
        assert_eq!(cdf.len(), 10);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(cdf.last().unwrap().0, 100.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_empty_and_zero_n() {
        let s = Summary::new();
        assert!(s.cdf_points(5).is_empty());
        let mut s2 = Summary::new();
        s2.record(1.0);
        assert!(s2.cdf_points(0).is_empty());
    }

    #[test]
    fn csv_headers_present() {
        let mut s = Summary::new();
        s.record(2.0);
        assert!(s.cdf_csv(2).starts_with("value,cdf\n"));
        let mut ts = TimeSeries::new();
        ts.record(SimTime(1_000_000_000), 7.0);
        let csv = ts.to_csv();
        assert!(csv.starts_with("seconds,value\n"));
        assert!(csv.contains("1,7"));
    }
}
