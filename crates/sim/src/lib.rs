//! # grouter-sim
//!
//! Deterministic discrete-event simulation substrate used by the GROUTER
//! reproduction.
//!
//! The paper evaluates GROUTER on real DGX-class GPU servers; this crate is the
//! hardware substitute (see `DESIGN.md` §2). It provides:
//!
//! * [`time`] — integer-nanosecond simulated clock types.
//! * [`engine`] — a generic event queue / scheduler with deterministic
//!   tie-breaking.
//! * [`flownet`] — a flow-level network model: transfers are flows over link
//!   paths, and bandwidth is shared with max-min fairness honouring per-flow
//!   rate floors (SLO guarantees) and caps (rate limiting). Allocation is
//!   incremental and scoped to contention components.
//! * [`flownet_ref`] — the full-recompute reference allocator, kept as the
//!   property-test oracle and benchmark baseline for [`flownet`].
//! * [`fault`] — seed-replayable fault-injection plans scheduled into the
//!   event queue (link flaps, NIC failures, GPU losses).
//! * [`stats`] — streaming percentiles, histograms and time series used by the
//!   elastic-storage policies and the experiment harness.
//! * [`rng`] — seeded deterministic random number helpers.
//! * [`shard`] — a conservative parallel engine: many [`engine`] timelines
//!   advanced in safe windows bounded by a cross-shard lookahead, with
//!   deterministic `(timestamp, shard, sequence)` message delivery.
//! * [`params`] — the single calibration table for all hardware constants.
//!
//! Everything in this crate is fully deterministic: two runs with the same
//! seed produce bit-identical event orders — including sharded runs, where
//! the result is additionally independent of the worker thread count.

pub mod engine;
pub mod fault;
pub mod flownet;
pub mod flownet_ref;
pub mod fxhash;
pub mod params;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use engine::{EventWorld, Scheduler, Simulation};
pub use fault::{FaultDomain, FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
pub use flownet::{FlowId, FlowNet, FlowNetError, FlowOptions, LinkId};
pub use flownet_ref::ReferenceNet;
pub use fxhash::{FxHashMap, FxHashSet};
pub use shard::{Envelope, RunStats, ShardWorld, ShardedEngine};
pub use time::{SimDuration, SimTime};
