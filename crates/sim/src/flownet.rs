//! Flow-level network model.
//!
//! Interconnect hardware (NVLink, PCIe, NIC, host paths) is modelled as a set
//! of directed links with fixed capacity in bytes/second. A data transfer
//! (or one chunk of a multi-path transfer) is a *flow* over an ordered list
//! of links. Bandwidth is divided between concurrent flows by **weighted
//! max-min fairness** extended with:
//!
//! * per-flow **floors** — a guaranteed minimum rate, used by GROUTER's
//!   SLO-aware transfer rate control (`Rate_least`, paper §4.3.2);
//! * per-flow **caps** — a maximum rate, used to throttle bandwidth-hungry
//!   workflows (bandwidth partitioning, Fig. 17);
//! * per-flow **weights** — idle bandwidth beyond the floors is distributed
//!   proportionally to weight, letting the controller hand spare bandwidth to
//!   the function with the tightest SLO.
//!
//! The model is quasi-stationary: whenever the flow set or any constraint
//! changes, all rates are recomputed and progress is settled up to the current
//! instant. This is the standard flow-level approximation used by network
//! simulators; it reproduces contention, aggregation and isolation effects
//! without per-packet simulation.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Identifies a link inside one [`FlowNet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// Identifies a flow inside one [`FlowNet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Rate constraints for a new flow. All rates are bytes/second.
#[derive(Clone, Copy, Debug)]
pub struct FlowOptions {
    /// Guaranteed minimum rate (0 = best effort).
    pub floor: f64,
    /// Maximum rate (`f64::INFINITY` = unlimited).
    pub cap: f64,
    /// Share of idle bandwidth relative to other flows (default 1.0).
    pub weight: f64,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            floor: 0.0,
            cap: f64::INFINITY,
            weight: 1.0,
        }
    }
}

/// A unidirectional interconnect edge.
#[derive(Clone, Debug)]
struct Link {
    name: String,
    capacity: f64,
}

#[derive(Clone, Debug)]
struct Flow {
    path: Vec<LinkId>,
    remaining: f64,
    rate: f64,
    floor: f64,
    cap: f64,
    weight: f64,
}

/// Errors returned by [`FlowNet`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowNetError {
    /// A flow path must contain at least one link.
    EmptyPath,
    /// The referenced link does not exist.
    UnknownLink(LinkId),
    /// The referenced flow does not exist (already completed or cancelled).
    UnknownFlow(FlowId),
}

impl std::fmt::Display for FlowNetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowNetError::EmptyPath => write!(f, "flow path is empty"),
            FlowNetError::UnknownLink(l) => write!(f, "unknown link {l:?}"),
            FlowNetError::UnknownFlow(fl) => write!(f, "unknown flow {fl:?}"),
        }
    }
}

impl std::error::Error for FlowNetError {}

/// Below this many bytes a flow counts as finished (absorbs ns rounding).
const EPS_BYTES: f64 = 0.5;
/// Below this rate (bytes/s) an allocation increment counts as zero.
const EPS_RATE: f64 = 1.0;

/// The flow-level network simulator.
///
/// Time does not advance by itself: the owner calls [`FlowNet::advance_to`]
/// (typically from a scheduled event at [`FlowNet::next_completion`]) to
/// settle progress and harvest completed flows.
///
/// # Examples
///
/// ```
/// use grouter_sim::{FlowNet, FlowOptions, SimTime};
///
/// let mut net = FlowNet::new();
/// let pcie = net.add_link("pcie", 12e9); // 12 GB/s
/// let flow = net
///     .start_flow(SimTime::ZERO, vec![pcie], 120e6, FlowOptions::default())
///     .unwrap();
/// // 120 MB over 12 GB/s → 10 ms.
/// let done_at = net.next_completion().unwrap();
/// assert_eq!(net.advance_to(done_at), vec![flow]);
/// assert!((done_at.as_millis_f64() - 10.0).abs() < 0.01);
/// ```
pub struct FlowNet {
    links: Vec<Link>,
    flows: BTreeMap<u64, Flow>,
    now: SimTime,
    next_id: u64,
    version: u64,
}

impl Default for FlowNet {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowNet {
    pub fn new() -> Self {
        FlowNet {
            links: Vec::new(),
            flows: BTreeMap::new(),
            now: SimTime::ZERO,
            next_id: 0,
            version: 0,
        }
    }

    /// Register a link with `capacity` bytes/second.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite: a
    /// zero-capacity link would deadlock every flow routed over it.
    pub fn add_link(&mut self, name: impl Into<String>, capacity: f64) -> LinkId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            name: name.into(),
            capacity,
        });
        id
    }

    /// Capacity of `link` in bytes/second.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].capacity
    }

    /// Human-readable link name (for diagnostics).
    pub fn link_name(&self, link: LinkId) -> &str {
        &self.links[link.0 as usize].name
    }

    /// Number of registered links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of in-flight flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Monotone counter bumped whenever any rate may have changed. Event
    /// handlers snapshot it to detect stale wake-ups.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current settle point of the model.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Start transferring `bytes` over `path`. Progress is settled to `now`
    /// first, then rates are recomputed.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        path: Vec<LinkId>,
        bytes: f64,
        opts: FlowOptions,
    ) -> Result<FlowId, FlowNetError> {
        if path.is_empty() {
            return Err(FlowNetError::EmptyPath);
        }
        for &l in &path {
            if l.0 as usize >= self.links.len() {
                return Err(FlowNetError::UnknownLink(l));
            }
        }
        self.settle(now);
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                path,
                remaining: bytes.max(0.0),
                rate: 0.0,
                floor: opts.floor.max(0.0),
                cap: opts.cap.max(0.0),
                weight: if opts.weight > 0.0 { opts.weight } else { 1.0 },
            },
        );
        self.recompute_rates();
        Ok(FlowId(id))
    }

    /// Abort a flow; remaining bytes are discarded.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Result<(), FlowNetError> {
        self.settle(now);
        if self.flows.remove(&id.0).is_none() {
            return Err(FlowNetError::UnknownFlow(id));
        }
        self.recompute_rates();
        Ok(())
    }

    /// Change a flow's guaranteed floor (SLO re-negotiation).
    pub fn set_floor(&mut self, now: SimTime, id: FlowId, floor: f64) -> Result<(), FlowNetError> {
        self.settle(now);
        let flow = self.flows.get_mut(&id.0).ok_or(FlowNetError::UnknownFlow(id))?;
        flow.floor = floor.max(0.0);
        self.recompute_rates();
        Ok(())
    }

    /// Change a flow's rate cap (bandwidth partitioning).
    pub fn set_cap(&mut self, now: SimTime, id: FlowId, cap: f64) -> Result<(), FlowNetError> {
        self.settle(now);
        let flow = self.flows.get_mut(&id.0).ok_or(FlowNetError::UnknownFlow(id))?;
        flow.cap = cap.max(0.0);
        self.recompute_rates();
        Ok(())
    }

    /// Change a link's capacity mid-run (failure injection: congestion from
    /// co-tenants, link flaps, degraded lanes). Progress is settled first;
    /// all rates are recomputed against the new capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite (a dead link
    /// would deadlock its flows; model removal by rerouting instead).
    pub fn set_link_capacity(&mut self, now: SimTime, link: LinkId, capacity: f64) {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite"
        );
        self.settle(now);
        self.links[link.0 as usize].capacity = capacity;
        self.recompute_rates();
    }

    /// Move an in-flight flow onto a new link path (topology-aware
    /// rebalancing, paper §4.3.3: a function occupying a direct path as part
    /// of an indirect route can be reassigned to an alternative route).
    /// Progress is settled first; remaining bytes continue on the new path.
    pub fn reroute_flow(
        &mut self,
        now: SimTime,
        id: FlowId,
        new_path: Vec<LinkId>,
    ) -> Result<(), FlowNetError> {
        if new_path.is_empty() {
            return Err(FlowNetError::EmptyPath);
        }
        for &l in &new_path {
            if l.0 as usize >= self.links.len() {
                return Err(FlowNetError::UnknownLink(l));
            }
        }
        self.settle(now);
        let flow = self.flows.get_mut(&id.0).ok_or(FlowNetError::UnknownFlow(id))?;
        flow.path = new_path;
        self.recompute_rates();
        Ok(())
    }

    /// Change a flow's idle-bandwidth weight.
    pub fn set_weight(&mut self, now: SimTime, id: FlowId, weight: f64) -> Result<(), FlowNetError> {
        self.settle(now);
        let flow = self.flows.get_mut(&id.0).ok_or(FlowNetError::UnknownFlow(id))?;
        flow.weight = if weight > 0.0 { weight } else { 1.0 };
        self.recompute_rates();
        Ok(())
    }

    /// Current allocated rate of `id` in bytes/second.
    pub fn flow_rate(&self, id: FlowId) -> Result<f64, FlowNetError> {
        self.flows
            .get(&id.0)
            .map(|f| f.rate)
            .ok_or(FlowNetError::UnknownFlow(id))
    }

    /// Bytes not yet delivered for `id` (as of the last settle point).
    pub fn flow_remaining(&self, id: FlowId) -> Result<f64, FlowNetError> {
        self.flows
            .get(&id.0)
            .map(|f| f.remaining)
            .ok_or(FlowNetError::UnknownFlow(id))
    }

    /// Aggregate rate currently crossing `link`.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        self.flows
            .values()
            .filter(|f| f.path.contains(&link))
            .map(|f| f.rate)
            .sum()
    }

    /// Earliest instant at which some flow completes, or `None` when no flow
    /// is making progress.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.flows
            .values()
            .filter(|f| f.rate > EPS_RATE || f.remaining <= EPS_BYTES)
            .map(|f| {
                if f.remaining <= EPS_BYTES {
                    self.now
                } else {
                    self.now + SimDuration::from_secs_f64(f.remaining / f.rate)
                }
            })
            .min()
    }

    /// Advance the model to `now`, returning the flows that completed (in
    /// ascending `FlowId` order). Completed flows are removed; rates are
    /// recomputed if anything completed.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<FlowId> {
        self.settle(now);
        let done: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= EPS_BYTES)
            .map(|(&id, _)| id)
            .collect();
        if done.is_empty() {
            return Vec::new();
        }
        for id in &done {
            self.flows.remove(id);
        }
        self.recompute_rates();
        done.into_iter().map(FlowId).collect()
    }

    /// Accrue progress at current rates from the last settle point to `now`.
    fn settle(&mut self, now: SimTime) {
        if now <= self.now {
            return;
        }
        let dt = (now - self.now).as_secs_f64();
        for flow in self.flows.values_mut() {
            flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
        }
        self.now = now;
    }

    /// Weighted max-min fair allocation with floors and caps.
    ///
    /// 1. Every flow starts at its floor (scaled down proportionally on links
    ///    where floors alone oversubscribe capacity — the admission controller
    ///    should prevent this, but the model stays robust if it does not).
    /// 2. Progressive filling: all unfrozen flows gain rate in proportion to
    ///    their weight until a link saturates or a flow hits its cap; binding
    ///    flows freeze; repeat.
    fn recompute_rates(&mut self) {
        self.version += 1;
        if self.flows.is_empty() {
            return;
        }

        let ids: Vec<u64> = self.flows.keys().copied().collect();
        let n = ids.len();
        let mut rate = vec![0.0f64; n];
        let mut frozen = vec![false; n];

        // Per-link members, built once.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.links.len()];
        for (idx, id) in ids.iter().enumerate() {
            for &l in &self.flows[id].path {
                members[l.0 as usize].push(idx);
            }
        }

        // Step 1: floors, with proportional scaling on oversubscribed links.
        let mut scale = vec![1.0f64; n];
        for (li, link) in self.links.iter().enumerate() {
            let total_floor: f64 = members[li]
                .iter()
                .map(|&i| self.flows[&ids[i]].floor)
                .sum();
            if total_floor > link.capacity {
                let factor = link.capacity / total_floor;
                for &i in &members[li] {
                    scale[i] = scale[i].min(factor);
                }
            }
        }
        for (i, id) in ids.iter().enumerate() {
            let f = &self.flows[id];
            rate[i] = (f.floor * scale[i]).min(f.cap);
            if f.cap - rate[i] <= EPS_RATE || f.remaining <= EPS_BYTES {
                frozen[i] = true;
            }
        }

        // Step 2: progressive filling of the idle bandwidth.
        // Each iteration freezes at least one flow, so it terminates.
        loop {
            if frozen.iter().all(|&f| f) {
                break;
            }
            // Residual capacity and active weight per link.
            let mut limiting_inc = f64::INFINITY; // in rate-per-unit-weight
            for (li, link) in self.links.iter().enumerate() {
                let used: f64 = members[li].iter().map(|&i| rate[i]).sum();
                let active_weight: f64 = members[li]
                    .iter()
                    .filter(|&&i| !frozen[i])
                    .map(|&i| self.flows[&ids[i]].weight)
                    .sum();
                if active_weight > 0.0 {
                    let residual = (link.capacity - used).max(0.0);
                    limiting_inc = limiting_inc.min(residual / active_weight);
                }
            }
            // Cap headroom, in per-unit-weight terms.
            for (i, id) in ids.iter().enumerate() {
                if !frozen[i] {
                    let f = &self.flows[id];
                    limiting_inc = limiting_inc.min((f.cap - rate[i]) / f.weight);
                }
            }
            if !limiting_inc.is_finite() {
                break;
            }
            if limiting_inc > 0.0 {
                for (i, id) in ids.iter().enumerate() {
                    if !frozen[i] {
                        rate[i] += limiting_inc * self.flows[id].weight;
                    }
                }
            }
            // Freeze flows bound by a saturated link or their cap.
            let mut any_frozen = false;
            for (li, link) in self.links.iter().enumerate() {
                let used: f64 = members[li].iter().map(|&i| rate[i]).sum();
                if link.capacity - used <= EPS_RATE {
                    for &i in &members[li] {
                        if !frozen[i] {
                            frozen[i] = true;
                            any_frozen = true;
                        }
                    }
                }
            }
            for (i, id) in ids.iter().enumerate() {
                if !frozen[i] && self.flows[id].cap - rate[i] <= EPS_RATE {
                    frozen[i] = true;
                    any_frozen = true;
                }
            }
            if !any_frozen {
                // Nothing binds (all remaining flows unconstrained with zero
                // residual everywhere) — freeze everything to terminate.
                break;
            }
        }

        for (i, id) in ids.iter().enumerate() {
            self.flows.get_mut(id).expect("flow present").rate = rate[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    fn net_one_link(cap: f64) -> (FlowNet, LinkId) {
        let mut net = FlowNet::new();
        let l = net.add_link("l0", cap);
        (net, l)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 1.0);
        // 1 GB over 10 GB/s = 100 ms
        let done_at = net.next_completion().unwrap();
        assert!((done_at.as_millis_f64() - 100.0).abs() < 1e-3);
        let done = net.advance_to(done_at);
        assert_eq!(done, vec![f]);
        assert_eq!(net.num_flows(), 0);
    }

    #[test]
    fn two_flows_share_fairly() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(f1).unwrap() - 5.0 * GB).abs() < 2.0);
        assert!((net.flow_rate(f2).unwrap() - 5.0 * GB).abs() < 2.0);
    }

    #[test]
    fn flow_rate_recovers_after_departure() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, vec![l], 0.5 * GB, FlowOptions::default())
            .unwrap();
        // f2 finishes first (same rate, half the bytes): at t=100ms.
        let t1 = net.next_completion().unwrap();
        assert_eq!(net.advance_to(t1), vec![f2]);
        // f1 has 0.5 GB left and now the full 10 GB/s.
        assert!((net.flow_rate(f1).unwrap() - 10.0 * GB).abs() < 2.0);
        let t2 = net.next_completion().unwrap();
        assert!((t2.as_millis_f64() - 150.0).abs() < 0.01);
    }

    #[test]
    fn path_limited_by_slowest_link() {
        let mut net = FlowNet::new();
        let fast = net.add_link("fast", 40.0 * GB);
        let slow = net.add_link("slow", 10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![fast, slow], GB, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 2.0);
    }

    #[test]
    fn max_min_bottleneck_allocation() {
        // Classic example: flows A (link1), B (link1+link2), C (link2).
        // link1 = 10, link2 = 4 → B bottlenecked at 2 on link2 (shares with C),
        // A then gets 8 on link1, C gets 2.
        let mut net = FlowNet::new();
        let l1 = net.add_link("l1", 10.0);
        let l2 = net.add_link("l2", 4.0);
        let a = net
            .start_flow(SimTime::ZERO, vec![l1], 1e9, FlowOptions::default())
            .unwrap();
        let b = net
            .start_flow(SimTime::ZERO, vec![l1, l2], 1e9, FlowOptions::default())
            .unwrap();
        let c = net
            .start_flow(SimTime::ZERO, vec![l2], 1e9, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(b).unwrap() - 2.0).abs() < 1e-6);
        assert!((net.flow_rate(c).unwrap() - 2.0).abs() < 1e-6);
        assert!((net.flow_rate(a).unwrap() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn floor_is_guaranteed_under_contention() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let slo = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    floor: 8.0 * GB,
                    ..Default::default()
                },
            )
            .unwrap();
        // Four best-effort flows pile on.
        let mut others = Vec::new();
        for _ in 0..4 {
            others.push(
                net.start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
                    .unwrap(),
            );
        }
        let r = net.flow_rate(slo).unwrap();
        assert!(r >= 8.0 * GB - 1.0, "floor violated: {r}");
        // Idle 2 GB/s is split 5 ways (the SLO flow also competes for idle).
        let r0 = net.flow_rate(others[0]).unwrap();
        assert!((r0 - 0.4 * GB).abs() < 10.0, "unexpected best-effort rate {r0}");
    }

    #[test]
    fn cap_limits_rate() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let capped = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    cap: 2.0 * GB,
                    ..Default::default()
                },
            )
            .unwrap();
        let free = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!(net.flow_rate(capped).unwrap() <= 2.0 * GB + 1.0);
        // The free flow gets the rest.
        assert!((net.flow_rate(free).unwrap() - 8.0 * GB).abs() < 2.0);
    }

    #[test]
    fn weights_split_idle_bandwidth_proportionally() {
        let (mut net, l) = net_one_link(9.0 * GB);
        let heavy = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    weight: 2.0,
                    ..Default::default()
                },
            )
            .unwrap();
        let light = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(heavy).unwrap() - 6.0 * GB).abs() < 2.0);
        assert!((net.flow_rate(light).unwrap() - 3.0 * GB).abs() < 2.0);
    }

    #[test]
    fn oversubscribed_floors_scale_down() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f1 = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    floor: 8.0 * GB,
                    ..Default::default()
                },
            )
            .unwrap();
        let f2 = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    floor: 12.0 * GB,
                    ..Default::default()
                },
            )
            .unwrap();
        let r1 = net.flow_rate(f1).unwrap();
        let r2 = net.flow_rate(f2).unwrap();
        // Total never exceeds capacity; floors shrink proportionally (8:12).
        assert!(r1 + r2 <= 10.0 * GB + 2.0);
        assert!((r1 / r2 - 8.0 / 12.0).abs() < 1e-3);
    }

    #[test]
    fn cancel_releases_bandwidth() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        net.cancel_flow(SimTime::ZERO, f2).unwrap();
        assert!((net.flow_rate(f1).unwrap() - 10.0 * GB).abs() < 2.0);
        assert_eq!(
            net.cancel_flow(SimTime::ZERO, f2),
            Err(FlowNetError::UnknownFlow(f2))
        );
    }

    #[test]
    fn partial_progress_is_settled_on_changes() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        // At t=50ms, half the bytes have moved; a second flow arrives.
        let t = SimTime(50_000_000);
        let _f2 = net.start_flow(t, vec![l], GB, FlowOptions::default()).unwrap();
        let rem = net.flow_remaining(f1).unwrap();
        assert!((rem - 0.5 * GB).abs() < 1e3, "remaining {rem}");
        // f1 now needs 0.5 GB at 5 GB/s → completes at t=150ms.
        let done_at = net.next_completion().unwrap();
        assert!((done_at.as_millis_f64() - 150.0).abs() < 0.01);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![l], 0.0, FlowOptions::default())
            .unwrap();
        assert_eq!(net.next_completion(), Some(SimTime::ZERO));
        assert_eq!(net.advance_to(SimTime::ZERO), vec![f]);
    }

    #[test]
    fn empty_path_rejected() {
        let mut net = FlowNet::new();
        assert_eq!(
            net.start_flow(SimTime::ZERO, vec![], GB, FlowOptions::default()),
            Err(FlowNetError::EmptyPath)
        );
    }

    #[test]
    fn unknown_link_rejected() {
        let mut net = FlowNet::new();
        assert_eq!(
            net.start_flow(SimTime::ZERO, vec![LinkId(7)], GB, FlowOptions::default()),
            Err(FlowNetError::UnknownLink(LinkId(7)))
        );
    }

    #[test]
    fn version_bumps_on_rate_changes() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let v0 = net.version();
        let f = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!(net.version() > v0);
        let v1 = net.version();
        net.set_cap(SimTime::ZERO, f, GB).unwrap();
        assert!(net.version() > v1);
    }

    #[test]
    fn link_utilization_reports_aggregate_rate() {
        let (mut net, l) = net_one_link(10.0 * GB);
        net.start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        net.start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!((net.link_utilization(l) - 10.0 * GB).abs() < 4.0);
    }

    #[test]
    fn degrading_a_link_slows_its_flows() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        // Halfway through, the link loses 80% of its capacity.
        let t = SimTime(50_000_000);
        net.set_link_capacity(t, l, 2.0 * GB);
        assert!((net.flow_rate(f).unwrap() - 2.0 * GB).abs() < 2.0);
        // 0.5 GB left at 2 GB/s → completes at 50ms + 250ms.
        let done = net.next_completion().unwrap();
        assert!((done.as_millis_f64() - 300.0).abs() < 0.01, "done {done}");
        // Restoring capacity speeds the flow back up.
        net.set_link_capacity(SimTime(100_000_000), l, 10.0 * GB);
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 2.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_injection_rejected() {
        let (mut net, l) = net_one_link(10.0 * GB);
        net.set_link_capacity(SimTime::ZERO, l, 0.0);
    }

    #[test]
    fn reroute_moves_remaining_bytes() {
        let mut net = FlowNet::new();
        let slow = net.add_link("slow", 1.0 * GB);
        let fast = net.add_link("fast", 10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![slow], GB, FlowOptions::default())
            .unwrap();
        // Half the bytes drained at 1 GB/s by t=500ms; reroute to the fast
        // link: remaining 0.5 GB at 10 GB/s → +50 ms.
        let t = SimTime(500_000_000);
        net.reroute_flow(t, f, vec![fast]).unwrap();
        assert!((net.flow_remaining(f).unwrap() - 0.5 * GB).abs() < 1e3);
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 2.0);
        let done = net.next_completion().unwrap();
        assert!((done.as_millis_f64() - 550.0).abs() < 0.01, "done {done}");
        // The old link is free for others.
        assert_eq!(net.link_utilization(slow), 0.0);
    }

    #[test]
    fn reroute_validates_inputs() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert_eq!(
            net.reroute_flow(SimTime::ZERO, f, vec![]),
            Err(FlowNetError::EmptyPath)
        );
        assert_eq!(
            net.reroute_flow(SimTime::ZERO, f, vec![LinkId(9)]),
            Err(FlowNetError::UnknownLink(LinkId(9)))
        );
        assert_eq!(
            net.reroute_flow(SimTime::ZERO, FlowId(99), vec![l]),
            Err(FlowNetError::UnknownFlow(FlowId(99)))
        );
    }

    #[test]
    fn parallel_paths_aggregate_bandwidth() {
        // Two disjoint links: two chunks of one logical transfer run in
        // parallel, halving completion time — the basis of bandwidth
        // harvesting.
        let mut net = FlowNet::new();
        let l1 = net.add_link("p1", 10.0 * GB);
        let l2 = net.add_link("p2", 10.0 * GB);
        net.start_flow(SimTime::ZERO, vec![l1], GB, FlowOptions::default())
            .unwrap();
        net.start_flow(SimTime::ZERO, vec![l2], GB, FlowOptions::default())
            .unwrap();
        let done_at = net.next_completion().unwrap();
        assert!((done_at.as_millis_f64() - 100.0).abs() < 1e-3);
        let done = net.advance_to(done_at);
        assert_eq!(done.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_net_and_flows() -> impl Strategy<Value = (Vec<f64>, Vec<(Vec<usize>, f64, f64, f64)>)> {
        // (link capacities, flows as (path link indices, bytes, floor, cap))
        (2usize..6).prop_flat_map(|n_links| {
            let caps = proptest::collection::vec(1e9..50e9, n_links);
            let flows = proptest::collection::vec(
                (
                    proptest::collection::vec(0..n_links, 1..3),
                    1e3..1e9,  // bytes
                    0.0..5e9,  // floor
                    1e8..1e11, // cap
                ),
                1..16,
            );
            (caps, flows)
        })
    }

    proptest! {
        /// Invariants under arbitrary floors and caps: per-link usage never
        /// exceeds capacity, every flow respects its cap, and the system
        /// always drains to empty.
        #[test]
        fn rates_respect_links_and_caps((caps, flow_specs) in arb_net_and_flows()) {
            let mut net = FlowNet::new();
            let links: Vec<LinkId> = caps
                .iter()
                .enumerate()
                .map(|(i, &c)| net.add_link(format!("l{i}"), c))
                .collect();
            let mut flows = Vec::new();
            for (path_idx, bytes, floor, cap) in flow_specs {
                let mut path: Vec<LinkId> = path_idx.iter().map(|&i| links[i]).collect();
                path.dedup();
                let f = net
                    .start_flow(
                        SimTime::ZERO,
                        path,
                        bytes,
                        FlowOptions { floor, cap, weight: 1.0 },
                    )
                    .expect("valid flow");
                flows.push((f, cap));
            }
            // Cap invariant.
            for &(f, cap) in &flows {
                let r = net.flow_rate(f).expect("live");
                prop_assert!(r <= cap + EPS_RATE, "rate {r} over cap {cap}");
            }
            // Link invariant — floors may legitimately oversubscribe only
            // when infeasible, and we scale them down, so usage ≤ capacity.
            for (i, &l) in links.iter().enumerate() {
                let used = net.link_utilization(l);
                prop_assert!(used <= caps[i] * (1.0 + 1e-9) + EPS_RATE, "link {i}");
            }
            // Drain.
            let mut guard = 0;
            while net.num_flows() > 0 {
                let t = net.next_completion().expect("progress");
                net.advance_to(t);
                guard += 1;
                prop_assert!(guard < 100_000);
            }
        }

        /// Settling at arbitrary intermediate instants never changes the
        /// final completion time of a lone flow (quasi-stationarity).
        #[test]
        fn settling_is_exact(bytes in 1e3f64..1e9, cap_gbps in 1.0f64..50.0, cuts in proptest::collection::vec(1u64..1_000_000_000, 0..8)) {
            let capacity = cap_gbps * 1e9;
            let reference = {
                let mut net = FlowNet::new();
                let l = net.add_link("l", capacity);
                net.start_flow(SimTime::ZERO, vec![l], bytes, FlowOptions::default())
                    .expect("flow");
                net.next_completion().expect("progress")
            };
            let mut net = FlowNet::new();
            let l = net.add_link("l", capacity);
            net.start_flow(SimTime::ZERO, vec![l], bytes, FlowOptions::default())
                .expect("flow");
            let mut sorted = cuts.clone();
            sorted.sort_unstable();
            for t in sorted {
                let at = SimTime(t);
                if at < reference {
                    net.advance_to(at);
                }
            }
            let done = net.next_completion().expect("progress");
            // Interior settles may only shift completion by ns rounding.
            let diff = done.as_nanos().abs_diff(reference.as_nanos());
            prop_assert!(diff <= cuts.len() as u64 + 1, "diff {diff}");
        }
    }
}
