//! Flow-level network model.
//!
//! Interconnect hardware (NVLink, PCIe, NIC, host paths) is modelled as a set
//! of directed links with fixed capacity in bytes/second. A data transfer
//! (or one chunk of a multi-path transfer) is a *flow* over an ordered list
//! of links. Bandwidth is divided between concurrent flows by **weighted
//! max-min fairness** extended with:
//!
//! * per-flow **floors** — a guaranteed minimum rate, used by GROUTER's
//!   SLO-aware transfer rate control (`Rate_least`, paper §4.3.2);
//! * per-flow **caps** — a maximum rate, used to throttle bandwidth-hungry
//!   workflows (bandwidth partitioning, Fig. 17);
//! * per-flow **weights** — idle bandwidth beyond the floors is distributed
//!   proportionally to weight, letting the controller hand spare bandwidth to
//!   the function with the tightest SLO.
//!
//! The model is quasi-stationary: whenever the flow set or any constraint
//! changes, affected rates are recomputed and progress is settled up to the
//! current instant. This is the standard flow-level approximation used by
//! network simulators; it reproduces contention, aggregation and isolation
//! effects without per-packet simulation.
//!
//! # Incremental, contention-scoped allocation
//!
//! GROUTER's mechanisms (2 MB chunking, 5-chunk batches, parallel-path
//! bandwidth harvesting) turn one logical transfer into many short-lived
//! flows, so the allocator is on the hot path of every simulated byte. The
//! implementation is engineered around three ideas:
//!
//! 1. **Slab storage.** Flows live in a dense `Vec` slab with a free list;
//!    external [`FlowId`]s stay stable (monotonic, arrival-ordered) via a
//!    side index. Per-link member lists are maintained *incrementally* on
//!    flow add/remove/reroute instead of being rebuilt per recompute.
//! 2. **Contention components.** A flow event re-runs progressive filling
//!    only over the flows transitively sharing links with the changed flow
//!    (its *contention component*). Disjoint components — different nodes,
//!    different PCIe switches, independent NVLink cliques, the common case
//!    on DGX presets — keep their rates and completion estimates untouched.
//!    Within the recomputed component, member order is normalised to
//!    ascending `FlowId` so results are independent of event history.
//! 3. **Lazy completion heap.** [`FlowNet::next_completion`] pops a min-heap
//!    of projected completion times instead of scanning every flow; entries
//!    are invalidated by per-flow recompute stamps. Per-link aggregate rates
//!    make [`FlowNet::link_utilization`] O(1).
//!
//! Progress settling is lazy as well: each flow records the instant its
//! `remaining` was last materialised, and projections use the (constant)
//! current rate, so an event settles only the flows whose rates it changes.
//!
//! The historical full-recompute allocator is preserved in
//! [`crate::flownet_ref`] and property tests assert the two agree on rates
//! for randomized topologies, constraints and event sequences.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::time::{SimDuration, SimTime};

/// Identifies a link inside one [`FlowNet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// Identifies a flow inside one [`FlowNet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Rate constraints for a new flow. All rates are bytes/second.
#[derive(Clone, Copy, Debug)]
pub struct FlowOptions {
    /// Guaranteed minimum rate (0 = best effort).
    pub floor: f64,
    /// Maximum rate (`f64::INFINITY` = unlimited).
    pub cap: f64,
    /// Share of idle bandwidth relative to other flows (default 1.0).
    pub weight: f64,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            floor: 0.0,
            cap: f64::INFINITY,
            weight: 1.0,
        }
    }
}

/// A unidirectional interconnect edge.
#[derive(Clone, Debug)]
struct Link {
    name: String,
    capacity: f64,
    /// Slot indices of flows whose path crosses this link (a flow appears
    /// once per path occurrence). Maintained incrementally; *not* ordered.
    members: Vec<u32>,
    /// Aggregate allocated rate of `members`, maintained by every refill
    /// that touches this link. Makes `link_utilization` O(1).
    rate_sum: f64,
}

/// Sentinel id marking a free slab slot.
const FREE: u64 = u64::MAX;

#[derive(Clone, Debug)]
struct Slot {
    /// External flow id, or [`FREE`].
    id: u64,
    path: Vec<LinkId>,
    /// For each entry of `path`: this flow's index in that link's `members`
    /// list (kept in sync under swap-removal).
    member_pos: Vec<u32>,
    /// Bytes left as of `settled_at`.
    remaining: f64,
    rate: f64,
    floor: f64,
    /// Requested cap, normalised to a positive value or `INFINITY` (a
    /// non-positive or NaN cap would stall the flow forever; it is treated
    /// as "uncapped"). The *effective* cap is `cap.max(floor)`: the SLO
    /// floor is a guarantee and dominates a contradictory throttle.
    cap: f64,
    weight: f64,
    /// Instant at which `remaining` was last materialised.
    settled_at: SimTime,
    /// Version of the last refill that assigned `rate`; completion-heap
    /// entries carrying an older stamp are stale.
    stamp: u64,
}

impl Slot {
    #[inline]
    fn effective_cap(&self) -> f64 {
        self.cap.max(self.floor)
    }

    /// Bytes left when projected forward to `now` at the current rate.
    #[inline]
    fn remaining_at(&self, now: SimTime) -> f64 {
        if now <= self.settled_at {
            return self.remaining;
        }
        let dt = (now - self.settled_at).as_secs_f64();
        (self.remaining - self.rate * dt).max(0.0)
    }
}

/// Errors returned by [`FlowNet`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowNetError {
    /// A flow path must contain at least one link.
    EmptyPath,
    /// The referenced link does not exist.
    UnknownLink(LinkId),
    /// The referenced flow does not exist (already completed or cancelled).
    UnknownFlow(FlowId),
}

impl std::fmt::Display for FlowNetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowNetError::EmptyPath => write!(f, "flow path is empty"),
            FlowNetError::UnknownLink(l) => write!(f, "unknown link {l:?}"),
            FlowNetError::UnknownFlow(fl) => write!(f, "unknown flow {fl:?}"),
        }
    }
}

impl std::error::Error for FlowNetError {}

/// Below this many bytes a flow counts as finished (absorbs ns rounding).
pub(crate) const EPS_BYTES: f64 = 0.5;
/// Below this rate (bytes/s) an allocation increment counts as zero.
pub(crate) const EPS_RATE: f64 = 1.0;

/// Reusable buffers for component collection and progressive filling, so
/// steady-state recomputes allocate nothing.
#[derive(Default)]
struct Scratch {
    /// Component members (slot indices), sorted by external id before fill.
    comp_flows: Vec<u32>,
    /// Component links (global link indices), in discovery order.
    comp_links: Vec<u32>,
    /// Epoch stamps: slot visited during the current collection.
    flow_seen: Vec<u64>,
    /// Epoch stamps: link visited during the current collection.
    link_seen: Vec<u64>,
    /// Epoch of the current collection.
    epoch: u64,
    /// Global link index → local index into `comp_links` (epoch-checked).
    link_local: Vec<u32>,
    /// Global slot index → local index into `comp_flows` (valid post-sort).
    flow_local: Vec<u32>,
    // Per-fill SoA mirrors of the component's flows.
    rate: Vec<f64>,
    frozen: Vec<bool>,
    scale: Vec<f64>,
    floor: Vec<f64>,
    eff_cap: Vec<f64>,
    weight: Vec<f64>,
    // CSR of per-link member lists (local flow indices, ascending id).
    csr_start: Vec<u32>,
    csr_entries: Vec<u32>,
    /// Per-link write cursor during CSR construction (recycled per fill).
    csr_cursor: Vec<u32>,
    /// Harvest/removal buffers recycled across completion waves.
    harvest: Vec<u32>,
    freed_links: Vec<u32>,
}

/// Deferred-recompute state for a batch of same-instant updates.
#[derive(Default)]
struct Batch {
    depth: u32,
    /// Slots whose constraints/paths changed (validated at commit).
    seed_flows: Vec<u32>,
    /// Links whose membership or capacity changed.
    seed_links: Vec<u32>,
}

/// The flow-level network simulator.
///
/// Time does not advance by itself: the owner calls [`FlowNet::advance_to`]
/// (typically from a scheduled event at [`FlowNet::next_completion`]) to
/// settle progress and harvest completed flows.
///
/// # Examples
///
/// ```
/// use grouter_sim::{FlowNet, FlowOptions, SimTime};
///
/// let mut net = FlowNet::new();
/// let pcie = net.add_link("pcie", 12e9); // 12 GB/s
/// let flow = net
///     .start_flow(SimTime::ZERO, vec![pcie], 120e6, FlowOptions::default())
///     .unwrap();
/// // 120 MB over 12 GB/s → 10 ms.
/// let done_at = net.next_completion().unwrap();
/// assert_eq!(net.advance_to(done_at), vec![flow]);
/// assert!((done_at.as_millis_f64() - 10.0).abs() < 0.01);
/// ```
pub struct FlowNet {
    links: Vec<Link>,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    /// External id → slot index. Touched only at the API boundary; all hot
    /// loops run on slot indices.
    id_index: HashMap<u64, u32>,
    live_flows: usize,
    now: SimTime,
    next_id: u64,
    version: u64,
    /// Min-heap of `(completion ns, flow id, stamp)` projections. Entries
    /// are lazily discarded when the flow is gone or was re-stamped.
    completions: BinaryHeap<Reverse<(u64, u64, u64)>>,
    scratch: Scratch,
    batch: Batch,
    /// Observability handle ([`FlowNet::set_recorder`]); disabled by
    /// default, so the per-recompute cost is one atomic load.
    rec: grouter_obs::Recorder,
}

impl Default for FlowNet {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowNet {
    pub fn new() -> Self {
        FlowNet {
            links: Vec::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            id_index: HashMap::new(),
            live_flows: 0,
            now: SimTime::ZERO,
            next_id: 0,
            version: 0,
            completions: BinaryHeap::new(),
            scratch: Scratch::default(),
            batch: Batch::default(),
            rec: grouter_obs::Recorder::disabled(),
        }
    }

    /// Attach an observability recorder; rate-reallocation waves are then
    /// emitted as `net.realloc_wave` instants (when [`grouter_obs::Comp::Net`]
    /// is enabled in the recorder's mask).
    pub fn set_recorder(&mut self, rec: grouter_obs::Recorder) {
        self.rec = rec;
    }

    /// Register a link with `capacity` bytes/second.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite: a
    /// zero-capacity link would deadlock every flow routed over it.
    pub fn add_link(&mut self, name: impl Into<String>, capacity: f64) -> LinkId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            name: name.into(),
            capacity,
            members: Vec::new(),
            rate_sum: 0.0,
        });
        self.scratch.link_seen.push(0);
        self.scratch.link_local.push(0);
        id
    }

    /// Capacity of `link` in bytes/second.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].capacity
    }

    /// Human-readable link name (for diagnostics).
    pub fn link_name(&self, link: LinkId) -> &str {
        &self.links[link.0 as usize].name
    }

    /// Number of registered links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of in-flight flows.
    pub fn num_flows(&self) -> usize {
        self.live_flows
    }

    /// Monotone counter bumped whenever any rate may have changed. Event
    /// handlers snapshot it to detect stale wake-ups.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current settle point of the model.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Defer rate recomputation until the matching [`FlowNet::commit_batch`].
    ///
    /// Use around a burst of same-instant updates (starting every flow of a
    /// multi-path plan, applying a set of reroutes): the allocator then runs
    /// progressive filling once over the union of affected contention
    /// components instead of once per call. Batches nest; only the
    /// outermost commit recomputes. Rates and completion estimates read
    /// between `begin_batch` and `commit_batch` are stale, and
    /// [`FlowNet::advance_to`] must not be called inside a batch.
    pub fn begin_batch(&mut self) {
        self.batch.depth += 1;
    }

    /// Close the current batch; on the outermost close, recompute the union
    /// of all contention components touched since [`FlowNet::begin_batch`].
    pub fn commit_batch(&mut self) {
        assert!(self.batch.depth > 0, "commit_batch without begin_batch");
        self.batch.depth -= 1;
        if self.batch.depth > 0 {
            return;
        }
        let mut seed_flows = std::mem::take(&mut self.batch.seed_flows);
        let mut seed_links = std::mem::take(&mut self.batch.seed_links);
        if !seed_flows.is_empty() || !seed_links.is_empty() {
            // A slot recorded as a seed may have been cancelled (and
            // possibly reused) later in the same batch; freed slots are
            // skipped — their links were recorded separately at removal
            // time.
            seed_flows.retain(|&s| self.slots[s as usize].id != FREE);
            self.recompute_scoped(&seed_flows, &seed_links);
        }
        // Recycle the seed buffers for the next batch.
        seed_flows.clear();
        seed_links.clear();
        self.batch.seed_flows = seed_flows;
        self.batch.seed_links = seed_links;
    }

    /// Start transferring `bytes` over `path`. Progress is settled to `now`
    /// first, then rates are recomputed for the affected contention
    /// component.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        path: Vec<LinkId>,
        bytes: f64,
        opts: FlowOptions,
    ) -> Result<FlowId, FlowNetError> {
        if path.is_empty() {
            return Err(FlowNetError::EmptyPath);
        }
        for &l in &path {
            if l.0 as usize >= self.links.len() {
                return Err(FlowNetError::UnknownLink(l));
            }
        }
        self.advance_clock(now);
        let id = self.next_id;
        self.next_id += 1;
        let floor = opts.floor.max(0.0);
        let slot_idx = self.alloc_slot(Slot {
            id,
            path,
            member_pos: Vec::new(),
            remaining: bytes.max(0.0),
            rate: 0.0,
            floor,
            cap: normalize_cap(opts.cap),
            weight: if opts.weight > 0.0 { opts.weight } else { 1.0 },
            settled_at: self.now,
            stamp: 0,
        });
        self.attach_members(slot_idx);
        self.id_index.insert(id, slot_idx);
        self.live_flows += 1;
        self.recompute_scoped(&[slot_idx], &[]);
        Ok(FlowId(id))
    }

    /// Abort a flow; remaining bytes are discarded.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Result<(), FlowNetError> {
        let slot = *self
            .id_index
            .get(&id.0)
            .ok_or(FlowNetError::UnknownFlow(id))?;
        self.advance_clock(now);
        self.remove_flows(&[slot]);
        Ok(())
    }

    /// Change a flow's guaranteed floor (SLO re-negotiation).
    pub fn set_floor(&mut self, now: SimTime, id: FlowId, floor: f64) -> Result<(), FlowNetError> {
        let slot = *self
            .id_index
            .get(&id.0)
            .ok_or(FlowNetError::UnknownFlow(id))?;
        self.advance_clock(now);
        self.settle_slot(slot);
        self.slots[slot as usize].floor = floor.max(0.0);
        self.recompute_scoped(&[slot], &[]);
        Ok(())
    }

    /// Change a flow's rate cap (bandwidth partitioning).
    ///
    /// Non-positive caps are normalised to "uncapped", and a cap below the
    /// flow's floor is dominated by the floor: a literal `cap = 0` would
    /// otherwise leave the flow with `remaining > 0`, `rate = 0` and no
    /// completion ever scheduled — a silent stall.
    pub fn set_cap(&mut self, now: SimTime, id: FlowId, cap: f64) -> Result<(), FlowNetError> {
        let slot = *self
            .id_index
            .get(&id.0)
            .ok_or(FlowNetError::UnknownFlow(id))?;
        self.advance_clock(now);
        self.settle_slot(slot);
        self.slots[slot as usize].cap = normalize_cap(cap);
        self.recompute_scoped(&[slot], &[]);
        Ok(())
    }

    /// Change a link's capacity mid-run (failure injection: congestion from
    /// co-tenants, link flaps, degraded lanes). Progress is settled first;
    /// rates of the link's contention component are recomputed against the
    /// new capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite (a dead link
    /// would deadlock its flows; model removal by rerouting instead).
    pub fn set_link_capacity(&mut self, now: SimTime, link: LinkId, capacity: f64) {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite"
        );
        self.advance_clock(now);
        self.links[link.0 as usize].capacity = capacity;
        self.recompute_scoped(&[], &[link.0]);
    }

    /// Move an in-flight flow onto a new link path (topology-aware
    /// rebalancing, paper §4.3.3: a function occupying a direct path as part
    /// of an indirect route can be reassigned to an alternative route).
    /// Progress is settled first; remaining bytes continue on the new path.
    /// Both the vacated and the newly joined contention components are
    /// recomputed.
    pub fn reroute_flow(
        &mut self,
        now: SimTime,
        id: FlowId,
        new_path: Vec<LinkId>,
    ) -> Result<(), FlowNetError> {
        if new_path.is_empty() {
            return Err(FlowNetError::EmptyPath);
        }
        for &l in &new_path {
            if l.0 as usize >= self.links.len() {
                return Err(FlowNetError::UnknownLink(l));
            }
        }
        let slot = *self
            .id_index
            .get(&id.0)
            .ok_or(FlowNetError::UnknownFlow(id))?;
        self.advance_clock(now);
        self.settle_slot(slot);
        let old_links: Vec<u32> = {
            let s = &mut self.slots[slot as usize];
            s.path.iter().map(|l| l.0).collect()
        };
        self.detach_members(slot);
        {
            let s = &mut self.slots[slot as usize];
            s.path = new_path;
            s.member_pos.clear();
        }
        self.attach_members(slot);
        self.recompute_scoped(&[slot], &old_links);
        Ok(())
    }

    /// Change a flow's idle-bandwidth weight.
    pub fn set_weight(
        &mut self,
        now: SimTime,
        id: FlowId,
        weight: f64,
    ) -> Result<(), FlowNetError> {
        let slot = *self
            .id_index
            .get(&id.0)
            .ok_or(FlowNetError::UnknownFlow(id))?;
        self.advance_clock(now);
        self.settle_slot(slot);
        self.slots[slot as usize].weight = if weight > 0.0 { weight } else { 1.0 };
        self.recompute_scoped(&[slot], &[]);
        Ok(())
    }

    /// Current allocated rate of `id` in bytes/second.
    pub fn flow_rate(&self, id: FlowId) -> Result<f64, FlowNetError> {
        self.id_index
            .get(&id.0)
            .map(|&s| self.slots[s as usize].rate)
            .ok_or(FlowNetError::UnknownFlow(id))
    }

    /// Bytes not yet delivered for `id`, projected to the current instant.
    pub fn flow_remaining(&self, id: FlowId) -> Result<f64, FlowNetError> {
        self.id_index
            .get(&id.0)
            .map(|&s| self.slots[s as usize].remaining_at(self.now))
            .ok_or(FlowNetError::UnknownFlow(id))
    }

    /// Aggregate rate currently crossing `link`. O(1): maintained by every
    /// refill touching the link.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].rate_sum
    }

    /// Earliest instant at which some flow completes, or `None` when no flow
    /// is making progress. Lazily discards stale heap entries.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        debug_assert!(self.batch.depth == 0, "next_completion inside a batch");
        while let Some(&Reverse((at, id, stamp))) = self.completions.peek() {
            match self.id_index.get(&id) {
                Some(&s) if self.slots[s as usize].stamp == stamp => {
                    // Completions projected from an older settle point never
                    // report earlier than the current settle point.
                    return Some(SimTime(at.max(self.now.0)));
                }
                _ => {
                    self.completions.pop();
                }
            }
        }
        None
    }

    /// Advance the model to `now`, returning the flows that completed (in
    /// ascending `FlowId` order). Completed flows are removed; the affected
    /// contention components are recomputed.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<FlowId> {
        let mut out = Vec::new();
        self.advance_to_into(now, &mut out);
        out
    }

    /// [`FlowNet::advance_to`] into a caller-owned buffer: the whole batch
    /// of flows completing by `now` is appended to `out` (ascending
    /// `FlowId`), so a steady-state caller recycling its buffer harvests a
    /// completion wave without allocating.
    pub fn advance_to_into(&mut self, now: SimTime, out: &mut Vec<FlowId>) {
        assert!(self.batch.depth == 0, "advance_to inside a batch");
        self.advance_clock(now);
        let horizon = self.now.0;
        let start = out.len();
        // A harvest frees bandwidth, which can push a peer's projected
        // completion down to this very instant — loop until quiescent.
        // The harvest buffer is recycled across waves (taken out of scratch
        // so `remove_flows` can borrow the rest of `self`).
        let mut harvested = std::mem::take(&mut self.scratch.harvest);
        loop {
            harvested.clear();
            while let Some(&Reverse((at, id, stamp))) = self.completions.peek() {
                if at > horizon {
                    break;
                }
                self.completions.pop();
                if let Some(&s) = self.id_index.get(&id) {
                    if self.slots[s as usize].stamp == stamp {
                        harvested.push(s);
                    }
                }
            }
            if harvested.is_empty() {
                break;
            }
            for &s in &harvested {
                out.push(FlowId(self.slots[s as usize].id));
            }
            self.remove_flows(&harvested);
        }
        harvested.clear();
        self.scratch.harvest = harvested;
        out[start..].sort_unstable();
    }

    // -- internals ----------------------------------------------------------

    /// Move the settle point forward (never backwards). Individual flows
    /// settle lazily when their component is next recomputed.
    #[inline]
    fn advance_clock(&mut self, now: SimTime) {
        if now > self.now {
            self.now = now;
        }
    }

    /// Materialise one flow's progress at the current settle point.
    #[inline]
    fn settle_slot(&mut self, slot: u32) {
        let now = self.now;
        let s = &mut self.slots[slot as usize];
        if s.settled_at < now {
            let dt = (now - s.settled_at).as_secs_f64();
            s.remaining = (s.remaining - s.rate * dt).max(0.0);
            s.settled_at = now;
        }
    }

    fn alloc_slot(&mut self, slot: Slot) -> u32 {
        match self.free_slots.pop() {
            Some(idx) => {
                self.slots[idx as usize] = slot;
                idx
            }
            None => {
                self.slots.push(slot);
                self.scratch.flow_seen.push(0);
                self.scratch.flow_local.push(0);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Insert `slot` into the member list of every link on its path,
    /// recording positions for O(1) removal.
    fn attach_members(&mut self, slot: u32) {
        let path = std::mem::take(&mut self.slots[slot as usize].path);
        let mut member_pos = std::mem::take(&mut self.slots[slot as usize].member_pos);
        member_pos.clear();
        for &LinkId(l) in &path {
            let members = &mut self.links[l as usize].members;
            member_pos.push(members.len() as u32);
            members.push(slot);
        }
        let s = &mut self.slots[slot as usize];
        s.path = path;
        s.member_pos = member_pos;
    }

    /// Remove `slot` from every member list on its path via swap-removal,
    /// patching the displaced flow's recorded position.
    fn detach_members(&mut self, slot: u32) {
        let path = std::mem::take(&mut self.slots[slot as usize].path);
        let mut member_pos = std::mem::take(&mut self.slots[slot as usize].member_pos);
        for (k, &LinkId(l)) in path.iter().enumerate() {
            let pos = member_pos[k] as usize;
            let members = &mut self.links[l as usize].members;
            debug_assert_eq!(members[pos], slot);
            members.swap_remove(pos);
            if pos < members.len() {
                let moved = members[pos];
                let old_last = members.len() as u32;
                if moved == slot {
                    // A duplicate link in our own path: patch the local copy.
                    for (kk, &LinkId(ll)) in path.iter().enumerate() {
                        if ll == l && member_pos[kk] == old_last {
                            member_pos[kk] = pos as u32;
                            break;
                        }
                    }
                } else {
                    let ms = &mut self.slots[moved as usize];
                    for (kk, &LinkId(ll)) in ms.path.iter().enumerate() {
                        if ll == l && ms.member_pos[kk] == old_last {
                            ms.member_pos[kk] = pos as u32;
                            break;
                        }
                    }
                }
            }
        }
        let s = &mut self.slots[slot as usize];
        s.path = path;
        s.member_pos = member_pos;
    }

    /// Remove a set of live flows and recompute the contention components
    /// they leave behind.
    fn remove_flows(&mut self, removed: &[u32]) {
        // Collect the affected links before the membership edits (into a
        // recycled buffer — completion waves are too frequent to allocate).
        let mut freed_links = std::mem::take(&mut self.scratch.freed_links);
        freed_links.clear();
        for &s in removed {
            freed_links.extend(self.slots[s as usize].path.iter().map(|l| l.0));
        }
        for &s in removed {
            self.detach_members(s);
            let slot = &mut self.slots[s as usize];
            let id = slot.id;
            slot.id = FREE;
            slot.path.clear();
            slot.member_pos.clear();
            slot.rate = 0.0;
            self.id_index.remove(&id);
            self.free_slots.push(s);
            self.live_flows -= 1;
        }
        if self.batch.depth > 0 {
            self.batch.seed_links.extend_from_slice(&freed_links);
        } else {
            self.recompute_scoped(&[], &freed_links);
        }
        freed_links.clear();
        self.scratch.freed_links = freed_links;
    }

    /// Recompute rates for the union of contention components reachable from
    /// `seed_flows` (live slots) and `seed_links`, leaving every other
    /// component untouched. Under an open batch, only records the seeds.
    fn recompute_scoped(&mut self, seed_flows: &[u32], seed_links: &[u32]) {
        if self.batch.depth > 0 {
            self.batch.seed_flows.extend_from_slice(seed_flows);
            self.batch.seed_links.extend_from_slice(seed_links);
            return;
        }
        self.version += 1;
        self.collect_component(seed_flows, seed_links);
        self.refill_component();
        self.maybe_compact_completions();
        if self.rec.on(grouter_obs::Comp::Net) {
            self.emit_realloc_wave();
        }
        #[cfg(feature = "audit")]
        self.audit_recompute();
    }

    /// One `net.realloc_wave` instant per progressive-filling pass: how many
    /// flows/links the contention component spanned and the post-fill
    /// aggregate rate, the quantities that explain why a transfer's rate
    /// moved (cold path — only reached when `Comp::Net` tracing is on).
    fn emit_realloc_wave(&self) {
        let mut rate_sum = 0.0;
        for &s in &self.scratch.comp_flows {
            rate_sum += self.slots[s as usize].rate;
        }
        self.rec.instant(
            grouter_obs::Comp::Net,
            "realloc_wave",
            grouter_obs::Ids::NONE,
            vec![
                ("flows", self.scratch.comp_flows.len().into()),
                ("links", self.scratch.comp_links.len().into()),
                ("version", self.version.into()),
                ("rate_sum", rate_sum.into()),
            ],
        );
        self.rec.count(grouter_obs::Comp::Net, "realloc_waves", 1);
        self.rec.sample(
            grouter_obs::Comp::Net,
            "component_flows",
            self.scratch.comp_flows.len() as u64,
        );
    }

    /// Post-recompute invariants (`--features audit`): per-link capacity
    /// respected and aggregates coherent (every recompute, scoped to the
    /// component just touched), slab/heap coherence and the fairness oracle
    /// (sampled — see the `grouter-audit` crate's deterministic sampler).
    #[cfg(feature = "audit")]
    fn audit_recompute(&self) {
        grouter_audit::record_hit("flownet.link_caps");
        for &l in &self.scratch.comp_links {
            let link = &self.links[l as usize];
            let sum: f64 = link
                .members
                .iter()
                .map(|&m| self.slots[m as usize].rate)
                .sum();
            let tol = EPS_RATE * (link.members.len() as f64 + 1.0);
            grouter_audit::check("flownet.link_caps", sum <= link.capacity + tol, || {
                format!(
                    "link {} allocated {sum} over capacity {}",
                    link.name, link.capacity
                )
            });
            grouter_audit::check(
                "flownet.link_caps",
                (link.rate_sum - sum).abs() <= tol,
                || {
                    format!(
                        "link {} aggregate {} diverged from member sum {sum}",
                        link.name, link.rate_sum
                    )
                },
            );
        }

        if grouter_audit::every("flownet.slab", 8) {
            let live = self.slots.iter().filter(|s| s.id != FREE).count();
            grouter_audit::check(
                "flownet.slab",
                live == self.live_flows && live == self.id_index.len(),
                || {
                    format!(
                        "live slots {live}, live_flows {}, id_index {}",
                        self.live_flows,
                        self.id_index.len()
                    )
                },
            );
            // Sorted so a corrupt slab aborts naming the same flow each run.
            let mut index: Vec<(u64, u32)> = self.id_index.iter().map(|(&i, &s)| (i, s)).collect();
            index.sort_unstable();
            for (id, slot) in index {
                grouter_audit::check(
                    "flownet.slab",
                    self.slots.get(slot as usize).map(|s| s.id) == Some(id),
                    || format!("flow {id} indexed at slot {slot} which holds another flow"),
                );
            }
            for &f in &self.free_slots {
                grouter_audit::check("flownet.slab", self.slots[f as usize].id == FREE, || {
                    format!("free-listed slot {f} holds a live flow")
                });
            }
        }

        if grouter_audit::every("flownet.heap", 8) {
            // Every live flow that is due a wake-up (progressing, or already
            // drained) must have a projection under its current stamp —
            // otherwise its completion event is lost forever.
            let fresh: std::collections::BTreeSet<(u64, u64)> = self
                .completions
                .iter()
                .map(|&Reverse((_, id, stamp))| (id, stamp))
                .collect();
            for slot in &self.slots {
                if slot.id == FREE || (slot.rate <= EPS_RATE && slot.remaining > EPS_BYTES) {
                    continue;
                }
                grouter_audit::check(
                    "flownet.heap",
                    fresh.contains(&(slot.id, slot.stamp)),
                    || {
                        format!(
                            "flow {} (stamp {}) has no completion projection",
                            slot.id, slot.stamp
                        )
                    },
                );
            }
        }

        // Replay small components through the full-recompute reference
        // allocator and require identical rates: the incremental allocator's
        // fairness must not drift from the oracle.
        if grouter_audit::every("flownet.fairness", 16) {
            let n = self.scratch.comp_flows.len();
            if n > 0 && n <= 64 {
                let mut reference = crate::flownet_ref::ReferenceNet::new();
                let mut local = vec![u32::MAX; self.links.len()];
                for &l in &self.scratch.comp_links {
                    local[l as usize] = reference.add_link("", self.links[l as usize].capacity).0;
                }
                // `comp_flows` is sorted by ascending external id, so the
                // oracle's BTreeMap iteration (and its floating-point
                // accumulation order) matches the component's.
                for &s in &self.scratch.comp_flows {
                    let slot = &self.slots[s as usize];
                    let path: Vec<LinkId> = slot
                        .path
                        .iter()
                        .map(|&LinkId(l)| LinkId(local[l as usize]))
                        .collect();
                    let started = reference.start_flow(
                        self.now,
                        path,
                        slot.remaining,
                        FlowOptions {
                            floor: slot.floor,
                            cap: slot.cap,
                            weight: slot.weight,
                        },
                    );
                    grouter_audit::check("flownet.fairness", started.is_ok(), || {
                        format!("oracle rejected live flow {}'s path", slot.id)
                    });
                }
                for (i, &s) in self.scratch.comp_flows.iter().enumerate() {
                    let slot = &self.slots[s as usize];
                    let want = reference.flow_rate(FlowId(i as u64)).unwrap_or(f64::NAN);
                    let tol = 1e-6 * want.abs().max(1.0) + EPS_RATE;
                    grouter_audit::check(
                        "flownet.fairness",
                        (slot.rate - want).abs() <= tol,
                        || {
                            format!(
                                "flow {}: incremental rate {} vs reference {want}",
                                slot.id, slot.rate
                            )
                        },
                    );
                }
            }
        }
    }

    /// Flood-fill the contention component: flows pull in every link on
    /// their path, links pull in every member flow.
    fn collect_component(&mut self, seed_flows: &[u32], seed_links: &[u32]) {
        let scratch = &mut self.scratch;
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        scratch.comp_flows.clear();
        scratch.comp_links.clear();
        for &s in seed_flows {
            if scratch.flow_seen[s as usize] != epoch {
                scratch.flow_seen[s as usize] = epoch;
                scratch.comp_flows.push(s);
            }
        }
        for &l in seed_links {
            if scratch.link_seen[l as usize] != epoch {
                scratch.link_seen[l as usize] = epoch;
                scratch.comp_links.push(l);
            }
        }
        let mut next_flow = 0usize;
        let mut next_link = 0usize;
        loop {
            if next_link < scratch.comp_links.len() {
                let l = scratch.comp_links[next_link];
                next_link += 1;
                for &m in &self.links[l as usize].members {
                    if scratch.flow_seen[m as usize] != epoch {
                        scratch.flow_seen[m as usize] = epoch;
                        scratch.comp_flows.push(m);
                    }
                }
                continue;
            }
            if next_flow < scratch.comp_flows.len() {
                let f = scratch.comp_flows[next_flow];
                next_flow += 1;
                for &LinkId(l) in &self.slots[f as usize].path {
                    if scratch.link_seen[l as usize] != epoch {
                        scratch.link_seen[l as usize] = epoch;
                        scratch.comp_links.push(l);
                    }
                }
                continue;
            }
            break;
        }
        // Normalise member order to ascending external id: allocation (and
        // its floating-point accumulation order) must not depend on the
        // history of slab reuse.
        let slots = &self.slots;
        scratch
            .comp_flows
            .sort_unstable_by_key(|&s| slots[s as usize].id);
    }

    /// Weighted max-min progressive filling over the collected component
    /// (see `collect_component`), then write-back: rates, per-link
    /// aggregates, completion-heap entries.
    ///
    /// 1. Every flow starts at its floor (scaled down proportionally on links
    ///    where floors alone oversubscribe capacity — the admission controller
    ///    should prevent this, but the model stays robust if it does not).
    /// 2. Progressive filling: all unfrozen flows gain rate in proportion to
    ///    their weight until a link saturates or a flow hits its cap; binding
    ///    flows freeze; repeat.
    fn refill_component(&mut self) {
        let scratch = &mut self.scratch;
        let n = scratch.comp_flows.len();
        let version = self.version;
        let now = self.now;

        // Settle members to the current instant; their rates change below.
        for &s in &scratch.comp_flows {
            let slot = &mut self.slots[s as usize];
            if slot.settled_at < now {
                let dt = (now - slot.settled_at).as_secs_f64();
                slot.remaining = (slot.remaining - slot.rate * dt).max(0.0);
                slot.settled_at = now;
            }
        }

        if n == 0 {
            // Links may still need their aggregates zeroed (e.g. the last
            // member of a link was cancelled).
            for &l in &scratch.comp_links {
                debug_assert!(self.links[l as usize].members.is_empty());
                self.links[l as usize].rate_sum = 0.0;
            }
            return;
        }

        // SoA mirrors + local indices.
        scratch.rate.clear();
        scratch.frozen.clear();
        scratch.scale.clear();
        scratch.floor.clear();
        scratch.eff_cap.clear();
        scratch.weight.clear();
        for (local, &s) in scratch.comp_flows.iter().enumerate() {
            let slot = &self.slots[s as usize];
            scratch.flow_local[s as usize] = local as u32;
            scratch.rate.push(0.0);
            scratch.frozen.push(false);
            scratch.scale.push(1.0);
            scratch.floor.push(slot.floor);
            scratch.eff_cap.push(slot.effective_cap());
            scratch.weight.push(slot.weight);
        }

        // CSR of per-link member lists in ascending-id order (flow-major
        // construction over the sorted component preserves it, including
        // duplicate entries for a path that crosses a link twice).
        for (li, &l) in scratch.comp_links.iter().enumerate() {
            scratch.link_local[l as usize] = li as u32;
        }
        scratch.csr_start.clear();
        scratch.csr_start.resize(scratch.comp_links.len() + 1, 0);
        for &s in &scratch.comp_flows {
            for &LinkId(l) in &self.slots[s as usize].path {
                scratch.csr_start[scratch.link_local[l as usize] as usize + 1] += 1;
            }
        }
        for li in 1..scratch.csr_start.len() {
            scratch.csr_start[li] += scratch.csr_start[li - 1];
        }
        scratch.csr_entries.clear();
        scratch
            .csr_entries
            .resize(scratch.csr_start.last().copied().unwrap_or(0) as usize, 0);
        scratch.csr_cursor.clear();
        scratch
            .csr_cursor
            .extend_from_slice(&scratch.csr_start[..scratch.comp_links.len()]);
        for (local, &s) in scratch.comp_flows.iter().enumerate() {
            for &LinkId(l) in &self.slots[s as usize].path {
                let li = scratch.link_local[l as usize] as usize;
                scratch.csr_entries[scratch.csr_cursor[li] as usize] = local as u32;
                scratch.csr_cursor[li] += 1;
            }
        }
        let members_of = |scratch: &Scratch, li: usize| -> std::ops::Range<usize> {
            scratch.csr_start[li] as usize..scratch.csr_start[li + 1] as usize
        };

        // Step 1: floors, with proportional scaling on oversubscribed links.
        for (li, &l) in scratch.comp_links.iter().enumerate() {
            let capacity = self.links[l as usize].capacity;
            let r = members_of(scratch, li);
            let total_floor: f64 = scratch.csr_entries[r.clone()]
                .iter()
                .map(|&i| scratch.floor[i as usize])
                .sum();
            if total_floor > capacity {
                let factor = capacity / total_floor;
                for e in r {
                    let i = scratch.csr_entries[e] as usize;
                    scratch.scale[i] = scratch.scale[i].min(factor);
                }
            }
        }
        for (i, &s) in scratch.comp_flows.iter().enumerate() {
            scratch.rate[i] = (scratch.floor[i] * scratch.scale[i]).min(scratch.eff_cap[i]);
            if scratch.eff_cap[i] - scratch.rate[i] <= EPS_RATE
                || self.slots[s as usize].remaining <= EPS_BYTES
            {
                scratch.frozen[i] = true;
            }
        }

        // Step 2: progressive filling of the idle bandwidth.
        // Each iteration freezes at least one flow, so it terminates.
        loop {
            if scratch.frozen.iter().all(|&f| f) {
                break;
            }
            // Residual capacity and active weight per link.
            let mut limiting_inc = f64::INFINITY; // in rate-per-unit-weight
            for (li, &l) in scratch.comp_links.iter().enumerate() {
                let capacity = self.links[l as usize].capacity;
                let r = members_of(scratch, li);
                let mut used = 0.0;
                let mut active_weight = 0.0;
                for &i in &scratch.csr_entries[r] {
                    used += scratch.rate[i as usize];
                    if !scratch.frozen[i as usize] {
                        active_weight += scratch.weight[i as usize];
                    }
                }
                if active_weight > 0.0 {
                    let residual = (capacity - used).max(0.0);
                    limiting_inc = limiting_inc.min(residual / active_weight);
                }
            }
            // Cap headroom, in per-unit-weight terms.
            for i in 0..n {
                if !scratch.frozen[i] {
                    limiting_inc = limiting_inc
                        .min((scratch.eff_cap[i] - scratch.rate[i]) / scratch.weight[i]);
                }
            }
            if !limiting_inc.is_finite() {
                break;
            }
            if limiting_inc > 0.0 {
                for i in 0..n {
                    if !scratch.frozen[i] {
                        scratch.rate[i] += limiting_inc * scratch.weight[i];
                    }
                }
            }
            // Freeze flows bound by a saturated link or their cap.
            let mut any_frozen = false;
            for (li, &l) in scratch.comp_links.iter().enumerate() {
                let capacity = self.links[l as usize].capacity;
                let r = members_of(scratch, li);
                let used: f64 = scratch.csr_entries[r.clone()]
                    .iter()
                    .map(|&i| scratch.rate[i as usize])
                    .sum();
                if capacity - used <= EPS_RATE {
                    for e in r {
                        let i = scratch.csr_entries[e] as usize;
                        if !scratch.frozen[i] {
                            scratch.frozen[i] = true;
                            any_frozen = true;
                        }
                    }
                }
            }
            for i in 0..n {
                if !scratch.frozen[i] && scratch.eff_cap[i] - scratch.rate[i] <= EPS_RATE {
                    scratch.frozen[i] = true;
                    any_frozen = true;
                }
            }
            if !any_frozen {
                // Nothing binds (all remaining flows unconstrained with zero
                // residual everywhere) — freeze everything to terminate.
                break;
            }
        }

        // Write-back: rates, stamps, completion projections, per-link sums.
        for (i, &s) in scratch.comp_flows.iter().enumerate() {
            let slot = &mut self.slots[s as usize];
            slot.rate = scratch.rate[i];
            slot.stamp = version;
            if slot.remaining <= EPS_BYTES {
                self.completions.push(Reverse((now.0, slot.id, version)));
            } else if slot.rate > EPS_RATE {
                let done = now + SimDuration::from_secs_f64(slot.remaining / slot.rate);
                self.completions.push(Reverse((done.0, slot.id, version)));
            }
        }
        for (li, &l) in scratch.comp_links.iter().enumerate() {
            let r = members_of(scratch, li);
            self.links[l as usize].rate_sum = scratch.csr_entries[r]
                .iter()
                .map(|&i| scratch.rate[i as usize])
                .sum();
        }
    }

    /// Bound heap garbage: when stale entries dominate, rebuild from live
    /// flows (deterministic — derived from slab state only).
    fn maybe_compact_completions(&mut self) {
        if self.completions.len() < 1024 || self.completions.len() < 8 * self.live_flows {
            return;
        }
        let mut fresh = BinaryHeap::with_capacity(self.live_flows);
        for slot in &self.slots {
            if slot.id == FREE {
                continue;
            }
            if slot.remaining <= EPS_BYTES {
                fresh.push(Reverse((slot.settled_at.0, slot.id, slot.stamp)));
            } else if slot.rate > EPS_RATE {
                let done = slot.settled_at + SimDuration::from_secs_f64(slot.remaining / slot.rate);
                fresh.push(Reverse((done.0, slot.id, slot.stamp)));
            }
        }
        self.completions = fresh;
    }
}

/// Non-positive (or NaN) caps stall a flow forever; treat them as
/// "uncapped". Positive caps pass through — the floor dominates at
/// allocation time via `Slot::effective_cap`.
#[inline]
fn normalize_cap(cap: f64) -> f64 {
    if cap > 0.0 {
        cap
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    fn net_one_link(cap: f64) -> (FlowNet, LinkId) {
        let mut net = FlowNet::new();
        let l = net.add_link("l0", cap);
        (net, l)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 1.0);
        // 1 GB over 10 GB/s = 100 ms
        let done_at = net.next_completion().unwrap();
        assert!((done_at.as_millis_f64() - 100.0).abs() < 1e-3);
        let done = net.advance_to(done_at);
        assert_eq!(done, vec![f]);
        assert_eq!(net.num_flows(), 0);
    }

    #[test]
    fn two_flows_share_fairly() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(f1).unwrap() - 5.0 * GB).abs() < 2.0);
        assert!((net.flow_rate(f2).unwrap() - 5.0 * GB).abs() < 2.0);
    }

    #[test]
    fn flow_rate_recovers_after_departure() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, vec![l], 0.5 * GB, FlowOptions::default())
            .unwrap();
        // f2 finishes first (same rate, half the bytes): at t=100ms.
        let t1 = net.next_completion().unwrap();
        assert_eq!(net.advance_to(t1), vec![f2]);
        // f1 has 0.5 GB left and now the full 10 GB/s.
        assert!((net.flow_rate(f1).unwrap() - 10.0 * GB).abs() < 2.0);
        let t2 = net.next_completion().unwrap();
        assert!((t2.as_millis_f64() - 150.0).abs() < 0.01);
    }

    #[test]
    fn path_limited_by_slowest_link() {
        let mut net = FlowNet::new();
        let fast = net.add_link("fast", 40.0 * GB);
        let slow = net.add_link("slow", 10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![fast, slow], GB, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 2.0);
    }

    #[test]
    fn max_min_bottleneck_allocation() {
        // Classic example: flows A (link1), B (link1+link2), C (link2).
        // link1 = 10, link2 = 4 → B bottlenecked at 2 on link2 (shares with C),
        // A then gets 8 on link1, C gets 2.
        let mut net = FlowNet::new();
        let l1 = net.add_link("l1", 10.0);
        let l2 = net.add_link("l2", 4.0);
        let a = net
            .start_flow(SimTime::ZERO, vec![l1], 1e9, FlowOptions::default())
            .unwrap();
        let b = net
            .start_flow(SimTime::ZERO, vec![l1, l2], 1e9, FlowOptions::default())
            .unwrap();
        let c = net
            .start_flow(SimTime::ZERO, vec![l2], 1e9, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(b).unwrap() - 2.0).abs() < 1e-6);
        assert!((net.flow_rate(c).unwrap() - 2.0).abs() < 1e-6);
        assert!((net.flow_rate(a).unwrap() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn floor_is_guaranteed_under_contention() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let slo = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    floor: 8.0 * GB,
                    ..Default::default()
                },
            )
            .unwrap();
        // Four best-effort flows pile on.
        let mut others = Vec::new();
        for _ in 0..4 {
            others.push(
                net.start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
                    .unwrap(),
            );
        }
        let r = net.flow_rate(slo).unwrap();
        assert!(r >= 8.0 * GB - 1.0, "floor violated: {r}");
        // Idle 2 GB/s is split 5 ways (the SLO flow also competes for idle).
        let r0 = net.flow_rate(others[0]).unwrap();
        assert!(
            (r0 - 0.4 * GB).abs() < 10.0,
            "unexpected best-effort rate {r0}"
        );
    }

    #[test]
    fn cap_limits_rate() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let capped = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    cap: 2.0 * GB,
                    ..Default::default()
                },
            )
            .unwrap();
        let free = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!(net.flow_rate(capped).unwrap() <= 2.0 * GB + 1.0);
        // The free flow gets the rest.
        assert!((net.flow_rate(free).unwrap() - 8.0 * GB).abs() < 2.0);
    }

    #[test]
    fn zero_cap_does_not_stall() {
        // Regression: a literal cap = 0 used to leave the flow with
        // remaining > 0, rate = 0, and no completion ever scheduled.
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    cap: 0.0,
                    ..Default::default()
                },
            )
            .unwrap();
        // Normalised to uncapped: full link rate, completes at 100 ms.
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 2.0);
        let done = net.next_completion().expect("flow makes progress");
        assert!((done.as_millis_f64() - 100.0).abs() < 1e-3);
        assert_eq!(net.advance_to(done), vec![f]);
    }

    #[test]
    fn set_cap_zero_does_not_stall() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        net.set_cap(SimTime::ZERO, f, 0.0).unwrap();
        assert!(net.next_completion().is_some(), "flow stalled by zero cap");
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 2.0);
    }

    #[test]
    fn cap_below_floor_is_dominated_by_floor() {
        // The SLO floor is a guarantee; a contradictory throttle must not
        // starve the flow below it (which would also break the completion
        // estimate the SLO controller derives from the floor).
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    floor: 4.0 * GB,
                    cap: 1.0 * GB,
                    ..Default::default()
                },
            )
            .unwrap();
        let r = net.flow_rate(f).unwrap();
        assert!(r >= 4.0 * GB - 1.0, "floor violated by low cap: {r}");
    }

    #[test]
    fn weights_split_idle_bandwidth_proportionally() {
        let (mut net, l) = net_one_link(9.0 * GB);
        let heavy = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    weight: 2.0,
                    ..Default::default()
                },
            )
            .unwrap();
        let light = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(heavy).unwrap() - 6.0 * GB).abs() < 2.0);
        assert!((net.flow_rate(light).unwrap() - 3.0 * GB).abs() < 2.0);
    }

    #[test]
    fn oversubscribed_floors_scale_down() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f1 = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    floor: 8.0 * GB,
                    ..Default::default()
                },
            )
            .unwrap();
        let f2 = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                GB,
                FlowOptions {
                    floor: 12.0 * GB,
                    ..Default::default()
                },
            )
            .unwrap();
        let r1 = net.flow_rate(f1).unwrap();
        let r2 = net.flow_rate(f2).unwrap();
        // Total never exceeds capacity; floors shrink proportionally (8:12).
        assert!(r1 + r2 <= 10.0 * GB + 2.0);
        assert!((r1 / r2 - 8.0 / 12.0).abs() < 1e-3);
    }

    #[test]
    fn cancel_releases_bandwidth() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        net.cancel_flow(SimTime::ZERO, f2).unwrap();
        assert!((net.flow_rate(f1).unwrap() - 10.0 * GB).abs() < 2.0);
        assert_eq!(
            net.cancel_flow(SimTime::ZERO, f2),
            Err(FlowNetError::UnknownFlow(f2))
        );
    }

    #[test]
    fn partial_progress_is_settled_on_changes() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        // At t=50ms, half the bytes have moved; a second flow arrives.
        let t = SimTime(50_000_000);
        let _f2 = net
            .start_flow(t, vec![l], GB, FlowOptions::default())
            .unwrap();
        let rem = net.flow_remaining(f1).unwrap();
        assert!((rem - 0.5 * GB).abs() < 1e3, "remaining {rem}");
        // f1 now needs 0.5 GB at 5 GB/s → completes at t=150ms.
        let done_at = net.next_completion().unwrap();
        assert!((done_at.as_millis_f64() - 150.0).abs() < 0.01);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![l], 0.0, FlowOptions::default())
            .unwrap();
        assert_eq!(net.next_completion(), Some(SimTime::ZERO));
        assert_eq!(net.advance_to(SimTime::ZERO), vec![f]);
    }

    #[test]
    fn empty_path_rejected() {
        let mut net = FlowNet::new();
        assert_eq!(
            net.start_flow(SimTime::ZERO, vec![], GB, FlowOptions::default()),
            Err(FlowNetError::EmptyPath)
        );
    }

    #[test]
    fn unknown_link_rejected() {
        let mut net = FlowNet::new();
        assert_eq!(
            net.start_flow(SimTime::ZERO, vec![LinkId(7)], GB, FlowOptions::default()),
            Err(FlowNetError::UnknownLink(LinkId(7)))
        );
    }

    #[test]
    fn version_bumps_on_rate_changes() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let v0 = net.version();
        let f = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!(net.version() > v0);
        let v1 = net.version();
        net.set_cap(SimTime::ZERO, f, GB).unwrap();
        assert!(net.version() > v1);
    }

    #[test]
    fn link_utilization_reports_aggregate_rate() {
        let (mut net, l) = net_one_link(10.0 * GB);
        net.start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        net.start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert!((net.link_utilization(l) - 10.0 * GB).abs() < 4.0);
    }

    #[test]
    fn degrading_a_link_slows_its_flows() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        // Halfway through, the link loses 80% of its capacity.
        let t = SimTime(50_000_000);
        net.set_link_capacity(t, l, 2.0 * GB);
        assert!((net.flow_rate(f).unwrap() - 2.0 * GB).abs() < 2.0);
        // 0.5 GB left at 2 GB/s → completes at 50ms + 250ms.
        let done = net.next_completion().unwrap();
        assert!((done.as_millis_f64() - 300.0).abs() < 0.01, "done {done}");
        // Restoring capacity speeds the flow back up.
        net.set_link_capacity(SimTime(100_000_000), l, 10.0 * GB);
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 2.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_injection_rejected() {
        let (mut net, l) = net_one_link(10.0 * GB);
        net.set_link_capacity(SimTime::ZERO, l, 0.0);
    }

    #[test]
    fn reroute_moves_remaining_bytes() {
        let mut net = FlowNet::new();
        let slow = net.add_link("slow", 1.0 * GB);
        let fast = net.add_link("fast", 10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![slow], GB, FlowOptions::default())
            .unwrap();
        // Half the bytes drained at 1 GB/s by t=500ms; reroute to the fast
        // link: remaining 0.5 GB at 10 GB/s → +50 ms.
        let t = SimTime(500_000_000);
        net.reroute_flow(t, f, vec![fast]).unwrap();
        assert!((net.flow_remaining(f).unwrap() - 0.5 * GB).abs() < 1e3);
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 2.0);
        let done = net.next_completion().unwrap();
        assert!((done.as_millis_f64() - 550.0).abs() < 0.01, "done {done}");
        // The old link is free for others.
        assert_eq!(net.link_utilization(slow), 0.0);
    }

    #[test]
    fn reroute_validates_inputs() {
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        assert_eq!(
            net.reroute_flow(SimTime::ZERO, f, vec![]),
            Err(FlowNetError::EmptyPath)
        );
        assert_eq!(
            net.reroute_flow(SimTime::ZERO, f, vec![LinkId(9)]),
            Err(FlowNetError::UnknownLink(LinkId(9)))
        );
        assert_eq!(
            net.reroute_flow(SimTime::ZERO, FlowId(99), vec![l]),
            Err(FlowNetError::UnknownFlow(FlowId(99)))
        );
    }

    #[test]
    fn parallel_paths_aggregate_bandwidth() {
        // Two disjoint links: two chunks of one logical transfer run in
        // parallel, halving completion time — the basis of bandwidth
        // harvesting.
        let mut net = FlowNet::new();
        let l1 = net.add_link("p1", 10.0 * GB);
        let l2 = net.add_link("p2", 10.0 * GB);
        net.start_flow(SimTime::ZERO, vec![l1], GB, FlowOptions::default())
            .unwrap();
        net.start_flow(SimTime::ZERO, vec![l2], GB, FlowOptions::default())
            .unwrap();
        let done_at = net.next_completion().unwrap();
        assert!((done_at.as_millis_f64() - 100.0).abs() < 1e-3);
        let done = net.advance_to(done_at);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn disjoint_components_are_not_recomputed() {
        // Two independent links: events on one must not re-stamp flows on
        // the other (the whole point of contention scoping).
        let mut net = FlowNet::new();
        let l1 = net.add_link("c1", 10.0 * GB);
        let l2 = net.add_link("c2", 10.0 * GB);
        let a = net
            .start_flow(SimTime::ZERO, vec![l1], GB, FlowOptions::default())
            .unwrap();
        let stamp_a = {
            let s = net.id_index[&a.0];
            net.slots[s as usize].stamp
        };
        // Churn on the other component.
        for _ in 0..5 {
            let f = net
                .start_flow(SimTime::ZERO, vec![l2], GB, FlowOptions::default())
                .unwrap();
            net.cancel_flow(SimTime::ZERO, f).unwrap();
        }
        let stamp_a_after = {
            let s = net.id_index[&a.0];
            net.slots[s as usize].stamp
        };
        assert_eq!(stamp_a, stamp_a_after, "disjoint component was touched");
        assert!((net.flow_rate(a).unwrap() - 10.0 * GB).abs() < 2.0);
    }

    #[test]
    fn batch_defers_recompute_to_commit() {
        let (mut net, l) = net_one_link(10.0 * GB);
        net.begin_batch();
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        // Rates are stale until commit.
        assert_eq!(net.flow_rate(f1).unwrap(), 0.0);
        net.commit_batch();
        assert!((net.flow_rate(f1).unwrap() - 5.0 * GB).abs() < 2.0);
        assert!((net.flow_rate(f2).unwrap() - 5.0 * GB).abs() < 2.0);
    }

    #[test]
    fn batch_with_cancel_and_reuse_commits_cleanly() {
        let (mut net, l) = net_one_link(10.0 * GB);
        net.begin_batch();
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        net.cancel_flow(SimTime::ZERO, f1).unwrap();
        // The freed slot is immediately reused by the next start.
        let f2 = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        net.commit_batch();
        assert!((net.flow_rate(f2).unwrap() - 10.0 * GB).abs() < 2.0);
        assert_eq!(net.flow_rate(f1), Err(FlowNetError::UnknownFlow(f1)));
        assert_eq!(net.num_flows(), 1);
    }

    #[test]
    fn nested_batches_recompute_once_at_outermost_commit() {
        let (mut net, l) = net_one_link(10.0 * GB);
        net.begin_batch();
        net.begin_batch();
        let f = net
            .start_flow(SimTime::ZERO, vec![l], GB, FlowOptions::default())
            .unwrap();
        net.commit_batch();
        // Inner commit must not recompute yet.
        assert_eq!(net.flow_rate(f).unwrap(), 0.0);
        net.commit_batch();
        assert!((net.flow_rate(f).unwrap() - 10.0 * GB).abs() < 2.0);
    }

    #[test]
    fn duplicate_link_in_path_counts_twice() {
        // A path crossing the same link twice consumes double capacity on
        // it, exactly like two hops; removal must not corrupt membership.
        let (mut net, l) = net_one_link(10.0 * GB);
        let f = net
            .start_flow(SimTime::ZERO, vec![l, l], GB, FlowOptions::default())
            .unwrap();
        // Weighted fill: the flow's rate is counted twice on the link, so
        // it converges to capacity/2.
        assert!((net.flow_rate(f).unwrap() - 5.0 * GB).abs() < 2.0);
        assert!((net.link_utilization(l) - 10.0 * GB).abs() < 4.0);
        net.cancel_flow(SimTime::ZERO, f).unwrap();
        assert_eq!(net.num_flows(), 0);
        assert_eq!(net.link_utilization(l), 0.0);
    }

    #[test]
    fn link_utilization_matches_member_sum_under_churn() {
        // The O(1) aggregate must track the true member-rate sum through
        // arrivals, departures, reroutes and constraint changes.
        let mut net = FlowNet::new();
        let links: Vec<LinkId> = (0..4)
            .map(|i| net.add_link(format!("l{i}"), 10.0 * GB))
            .collect();
        let mut live: Vec<(FlowId, Vec<LinkId>)> = Vec::new();
        let mut t = SimTime::ZERO;
        for step in 0u64..200 {
            t = SimTime(t.0 + 100_000);
            match step % 5 {
                0 | 1 => {
                    let path = vec![links[(step % 4) as usize], links[((step + 1) % 4) as usize]];
                    let f = net
                        .start_flow(t, path.clone(), GB, FlowOptions::default())
                        .unwrap();
                    live.push((f, path));
                }
                2 => {
                    if !live.is_empty() {
                        let (f, _) = live.remove((step as usize * 7) % live.len());
                        net.cancel_flow(t, f).unwrap();
                    }
                }
                3 => {
                    let pick = (step as usize * 3) % live.len().max(1);
                    if let Some((f, path)) = live.get_mut(pick) {
                        let new_path = vec![links[(step % 4) as usize]];
                        if net.reroute_flow(t, *f, new_path.clone()).is_ok() {
                            *path = new_path;
                        }
                    }
                }
                _ => {
                    if let Some((f, _)) = live.get((step as usize) % live.len().max(1)) {
                        let _ = net.set_weight(t, *f, 1.0 + (step % 3) as f64);
                    }
                }
            }
            // Compare the O(1) aggregate against a full scan.
            for &l in &links {
                let expected: f64 = live
                    .iter()
                    .map(|(f, path)| {
                        let crossings = path.iter().filter(|&&p| p == l).count() as f64;
                        crossings * net.flow_rate(*f).unwrap_or(0.0)
                    })
                    .sum();
                let got = net.link_utilization(l);
                assert!(
                    (got - expected).abs() <= 1e-6 * expected.max(1.0),
                    "step {step} link {l:?}: aggregate {got} != member sum {expected}"
                );
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_net_and_flows() -> impl Strategy<Value = (Vec<f64>, Vec<(Vec<usize>, f64, f64, f64)>)> {
        // (link capacities, flows as (path link indices, bytes, floor, cap))
        (2usize..6).prop_flat_map(|n_links| {
            let caps = proptest::collection::vec(1e9..50e9, n_links);
            let flows = proptest::collection::vec(
                (
                    proptest::collection::vec(0..n_links, 1..3),
                    1e3..1e9,  // bytes
                    0.0..5e9,  // floor
                    1e8..1e11, // cap
                ),
                1..16,
            );
            (caps, flows)
        })
    }

    proptest! {
        /// Invariants under arbitrary floors and caps: per-link usage never
        /// exceeds capacity, every flow respects its *effective* cap (the
        /// floor dominates a contradictory lower cap), and the system
        /// always drains to empty.
        #[test]
        fn rates_respect_links_and_caps((caps, flow_specs) in arb_net_and_flows()) {
            let mut net = FlowNet::new();
            let links: Vec<LinkId> = caps
                .iter()
                .enumerate()
                .map(|(i, &c)| net.add_link(format!("l{i}"), c))
                .collect();
            let mut flows = Vec::new();
            for (path_idx, bytes, floor, cap) in flow_specs {
                let mut path: Vec<LinkId> = path_idx.iter().map(|&i| links[i]).collect();
                path.dedup();
                let f = net
                    .start_flow(
                        SimTime::ZERO,
                        path,
                        bytes,
                        FlowOptions { floor, cap, weight: 1.0 },
                    )
                    .expect("valid flow");
                flows.push((f, floor.max(cap)));
            }
            // Effective-cap invariant.
            for &(f, eff_cap) in &flows {
                let r = net.flow_rate(f).expect("live");
                prop_assert!(r <= eff_cap + EPS_RATE, "rate {r} over effective cap {eff_cap}");
            }
            // Link invariant — floors may legitimately oversubscribe only
            // when infeasible, and we scale them down, so usage ≤ capacity.
            for (i, &l) in links.iter().enumerate() {
                let used = net.link_utilization(l);
                prop_assert!(used <= caps[i] * (1.0 + 1e-9) + EPS_RATE, "link {i}");
            }
            // Drain.
            let mut guard = 0;
            while net.num_flows() > 0 {
                let t = net.next_completion().expect("progress");
                net.advance_to(t);
                guard += 1;
                prop_assert!(guard < 100_000);
            }
        }

        /// Settling at arbitrary intermediate instants never changes the
        /// final completion time of a lone flow (quasi-stationarity).
        #[test]
        fn settling_is_exact(bytes in 1e3f64..1e9, cap_gbps in 1.0f64..50.0, cuts in proptest::collection::vec(1u64..1_000_000_000, 0..8)) {
            let capacity = cap_gbps * 1e9;
            let reference = {
                let mut net = FlowNet::new();
                let l = net.add_link("l", capacity);
                net.start_flow(SimTime::ZERO, vec![l], bytes, FlowOptions::default())
                    .expect("flow");
                net.next_completion().expect("progress")
            };
            let mut net = FlowNet::new();
            let l = net.add_link("l", capacity);
            net.start_flow(SimTime::ZERO, vec![l], bytes, FlowOptions::default())
                .expect("flow");
            let mut sorted = cuts.clone();
            sorted.sort_unstable();
            for t in sorted {
                let at = SimTime(t);
                if at < reference {
                    net.advance_to(at);
                }
            }
            let done = net.next_completion().expect("progress");
            // Interior settles may only shift completion by ns rounding.
            let diff = done.as_nanos().abs_diff(reference.as_nanos());
            prop_assert!(diff <= cuts.len() as u64 + 1, "diff {diff}");
        }
    }
}
