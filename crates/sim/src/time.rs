//! Simulated time.
//!
//! All timestamps are integer nanoseconds since the start of the simulation.
//! Integer time keeps the event queue total-ordered and the simulation
//! reproducible; floating-point time would make event ordering depend on
//! accumulated rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulated clock, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the epoch, as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding up to the next nanosecond.
    ///
    /// Rounding up guarantees that a transfer never completes *before* the
    /// bytes could have arrived, which keeps latency figures conservative.
    /// Negative and NaN inputs map to zero.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if !s.is_finite() {
            return SimDuration::MAX;
        }
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = (s * 1e9).ceil();
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiply by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (e.g. SLO = 1.5 × solo latency).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

/// Human-readable nanosecond formatting used in debug output.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // 1.5 ns worth of seconds must round to 2 ns, never 1.
        let d = SimDuration::from_secs_f64(1.5e-9);
        assert_eq!(d.as_nanos(), 2);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let later = t + SimDuration::from_micros(10);
        assert_eq!((later - t).as_micros_f64(), 10.0);
        assert_eq!(t.since(later), SimDuration::ZERO); // saturates
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10).mul_f64(1.5);
        assert_eq!(d.as_nanos(), 15_000_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
