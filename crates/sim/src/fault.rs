//! Deterministic fault injection for the discrete-event sim.
//!
//! Production GPU clusters see link flaps, NIC failures and whole-GPU
//! losses as everyday events; the healthy-path assumption baked into the
//! GROUTER data plane (route-GPU harvesting, Algorithm 1 selection) must
//! therefore be exercised under churn. A [`FaultPlan`] is a *seed-replayable
//! script* of such events: either written out explicitly (scripted) or
//! generated from a [`DetRng`] seed (randomized), and installed into a
//! [`Scheduler`] so faults interleave deterministically with regular
//! workload events. Two installs of the same plan over the same workload
//! produce bit-identical simulations.
//!
//! The plan itself is pure data — it does not know how a world reacts to a
//! fault. The world-side interpreter (the runtime's recovery engine) is
//! passed to [`FaultPlan::install`] as a handler.

use crate::engine::Scheduler;
use crate::flownet::LinkId;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// One fault (or repair) the plan injects. GPUs and NICs are named by flat
/// cluster-wide indices (`node * per_node + local`); FlowNet links by their
/// [`LinkId`]. The sim crate assigns no meaning to these — the installed
/// handler interprets them against its topology.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Scale a FlowNet link to `factor` × its healthy capacity
    /// (`0 < factor ≤ 1`; FlowNet rejects non-positive capacities).
    LinkDegrade { link: LinkId, factor: f64 },
    /// Return a previously degraded FlowNet link to its healthy capacity.
    LinkRestore { link: LinkId },
    /// A GPU's NVLink ports die: it disappears from the bandwidth matrix
    /// (both as an endpoint and as an intermediate *route* GPU) but keeps
    /// computing and keeps its memory.
    RouteGpuLoss { gpu: usize },
    /// The NVLink ports of a route-lost GPU come back.
    RouteGpuRestore { gpu: usize },
    /// A NIC fails: cross-node traffic over it crawls at a residual trickle
    /// until repaired.
    NicFail { node: usize, nic: usize },
    /// The failed NIC is replaced.
    NicRestore { node: usize, nic: usize },
    /// Whole-GPU failure: compute, stored intermediates and links are all
    /// lost at once.
    GpuFail { gpu: usize },
    /// The failed GPU rejoins empty (pool unquarantined, links unmasked).
    GpuRestore { gpu: usize },
    /// Control plane: the worker group this plan is installed on dies —
    /// its heartbeat daemon goes silent and every local GPU fails at once.
    /// (The host gateway survives: requests already in flight toward the
    /// group still arrive and terminate as typed failures.)
    WorkerDeath,
    /// The dead worker rejoins: GPUs restore empty and heartbeats resume.
    WorkerRestart,
    /// Control plane, router side: the next `drops` heartbeats *from*
    /// worker `group` are lost before the router sees them (frontend
    /// message loss); the router keeps routing on its stale view.
    HeartbeatLoss { group: usize, drops: u32 },
}

/// A [`FaultKind`] pinned to a simulation instant.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub kind: FaultKind,
}

/// The fault targets a randomized plan may draw from. The caller harvests
/// these from its topology (the sim crate cannot).
#[derive(Clone, Debug, Default)]
pub struct FaultDomain {
    /// Total GPUs in the cluster (flat indexing).
    pub gpus: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// NICs per node.
    pub nics_per_node: usize,
    /// FlowNet links eligible for degrade/restore flapping.
    pub links: Vec<LinkId>,
}

/// Shape of a randomized plan.
#[derive(Clone, Debug)]
pub struct FaultPlanConfig {
    /// Faults are injected uniformly over `[0, horizon)`.
    pub horizon: SimDuration,
    /// Number of fault events (each may add a paired repair).
    pub faults: usize,
    /// Outage duration range for paired repairs.
    pub min_outage: SimDuration,
    pub max_outage: SimDuration,
    /// Permit whole-GPU failures (the most destructive kind).
    pub allow_gpu_fail: bool,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            horizon: SimDuration::from_secs_f64(0.2),
            faults: 4,
            min_outage: SimDuration::from_secs_f64(0.005),
            max_outage: SimDuration::from_secs_f64(0.060),
            allow_gpu_fail: true,
        }
    }
}

/// Shape of a randomized control-plane fault plan (service mode): worker
/// deaths mid-heartbeat-interval plus router-side heartbeat loss.
#[derive(Clone, Debug)]
pub struct CtlFaultConfig {
    /// Events land uniformly over `[0, horizon)`.
    pub horizon: SimDuration,
    /// Worker-death events (each may add a paired restart).
    pub deaths: usize,
    /// Router-side heartbeat-loss events.
    pub hb_losses: usize,
    /// Heartbeats dropped per loss event, drawn from `1..=max_drops`.
    pub max_drops: u32,
    /// Outage duration range for paired restarts.
    pub min_outage: SimDuration,
    pub max_outage: SimDuration,
}

impl Default for CtlFaultConfig {
    fn default() -> Self {
        CtlFaultConfig {
            horizon: SimDuration::from_secs_f64(2.0),
            deaths: 2,
            hb_losses: 3,
            max_drops: 4,
            min_outage: SimDuration::from_secs_f64(0.2),
            max_outage: SimDuration::from_secs_f64(0.8),
        }
    }
}

/// A deterministic, seed-replayable schedule of fault events.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A hand-written plan (tests script exact failure instants). Events
    /// are stably sorted by time so installation order is deterministic
    /// regardless of authoring order.
    pub fn scripted(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at);
        FaultPlan { seed: 0, events }
    }

    /// Generate a randomized plan from `seed`. The same `(seed, domain,
    /// config)` triple always yields the identical plan — chaos tests print
    /// the seed on failure and replay it verbatim.
    pub fn randomized(seed: u64, domain: &FaultDomain, cfg: &FaultPlanConfig) -> FaultPlan {
        let mut rng = DetRng::new(seed).fork(0xFA01);
        let mut events = Vec::new();
        let horizon = cfg.horizon.as_nanos().max(1);
        for _ in 0..cfg.faults {
            let at = SimTime(rng.next_below(horizon));
            let outage = SimDuration(
                cfg.min_outage.as_nanos()
                    + rng.next_below(
                        cfg.max_outage
                            .as_nanos()
                            .saturating_sub(cfg.min_outage.as_nanos())
                            .max(1),
                    ),
            );
            let back = at.saturating_add(outage);
            // Weighted kind choice: link flaps are common, NIC failures
            // less so, GPU losses rare.
            let roll = rng.next_below(10);
            match roll {
                0..=4 if !domain.links.is_empty() => {
                    let link = *rng.choose(&domain.links);
                    let factor = rng.uniform(0.02, 0.5);
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::LinkDegrade { link, factor },
                    });
                    events.push(FaultEvent {
                        at: back,
                        kind: FaultKind::LinkRestore { link },
                    });
                }
                5..=6 if domain.gpus > 0 => {
                    let gpu = rng.next_below(domain.gpus as u64) as usize;
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::RouteGpuLoss { gpu },
                    });
                    events.push(FaultEvent {
                        at: back,
                        kind: FaultKind::RouteGpuRestore { gpu },
                    });
                }
                7 if domain.nodes > 0 && domain.nics_per_node > 0 => {
                    let node = rng.next_below(domain.nodes as u64) as usize;
                    let nic = rng.next_below(domain.nics_per_node as u64) as usize;
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::NicFail { node, nic },
                    });
                    events.push(FaultEvent {
                        at: back,
                        kind: FaultKind::NicRestore { node, nic },
                    });
                }
                _ if cfg.allow_gpu_fail && domain.gpus > 0 => {
                    let gpu = rng.next_below(domain.gpus as u64) as usize;
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::GpuFail { gpu },
                    });
                    // Half the failures heal within the outage window, the
                    // rest stay down for the remainder of the run.
                    if rng.next_u64().is_multiple_of(2) {
                        events.push(FaultEvent {
                            at: back,
                            kind: FaultKind::GpuRestore { gpu },
                        });
                    }
                }
                _ => {
                    // Domain cannot express the rolled kind (e.g. GPU kills
                    // disabled): fall back to a route loss when possible.
                    if domain.gpus > 0 {
                        let gpu = rng.next_below(domain.gpus as u64) as usize;
                        events.push(FaultEvent {
                            at,
                            kind: FaultKind::RouteGpuLoss { gpu },
                        });
                        events.push(FaultEvent {
                            at: back,
                            kind: FaultKind::RouteGpuRestore { gpu },
                        });
                    }
                }
            }
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// Generate randomized control-plane fault plans for a `groups`-wide
    /// service cluster with the router on group `router`: one plan per
    /// group, to be installed alongside any data-plane plan. Worker deaths
    /// land on non-router groups (their own plan); heartbeat losses land on
    /// the router's plan. A dedicated generator — rather than new arms in
    /// [`FaultPlan::randomized`] — keeps the existing weighted-roll RNG
    /// stream byte-stable for every seed the chaos goldens pin.
    pub fn randomized_ctl(
        seed: u64,
        groups: u32,
        router: u32,
        cfg: &CtlFaultConfig,
    ) -> Vec<FaultPlan> {
        assert!(groups > 0 && router < groups);
        let mut rng = DetRng::new(seed).fork(0xC71);
        let mut per_group: Vec<Vec<FaultEvent>> = vec![Vec::new(); groups as usize];
        let horizon = cfg.horizon.as_nanos().max(1);
        let workers: Vec<u32> = (0..groups).filter(|&g| g != router).collect();
        for _ in 0..cfg.deaths {
            if workers.is_empty() {
                break;
            }
            let g = *rng.choose(&workers);
            let at = SimTime(rng.next_below(horizon));
            let outage = SimDuration(
                cfg.min_outage.as_nanos()
                    + rng.next_below(
                        cfg.max_outage
                            .as_nanos()
                            .saturating_sub(cfg.min_outage.as_nanos())
                            .max(1),
                    ),
            );
            per_group[g as usize].push(FaultEvent {
                at,
                kind: FaultKind::WorkerDeath,
            });
            // Half the deaths revive within the outage window; the rest
            // stay down for the remainder of the run.
            if rng.next_u64().is_multiple_of(2) {
                per_group[g as usize].push(FaultEvent {
                    at: at.saturating_add(outage),
                    kind: FaultKind::WorkerRestart,
                });
            }
        }
        for _ in 0..cfg.hb_losses {
            if workers.is_empty() {
                break;
            }
            let g = *rng.choose(&workers);
            let at = SimTime(rng.next_below(horizon));
            let drops = 1 + rng.next_below(cfg.max_drops.max(1) as u64) as u32;
            per_group[router as usize].push(FaultEvent {
                at,
                kind: FaultKind::HeartbeatLoss {
                    group: g as usize,
                    drops,
                },
            });
        }
        per_group
            .into_iter()
            .map(|mut events| {
                events.sort_by_key(|e| e.at);
                FaultPlan { seed, events }
            })
            .collect()
    }

    /// The generating seed (0 for scripted plans) — printed by failing
    /// chaos tests for replay.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedule every event into `sched`. `handler` is the world-side fault
    /// interpreter; it runs at each event's instant, interleaved
    /// deterministically with regular events via the scheduler's `(at, seq)`
    /// order.
    pub fn install<W, F>(&self, sched: &mut Scheduler<W>, handler: F)
    where
        W: crate::engine::EventWorld,
        F: Fn(&mut W, &mut Scheduler<W>, &FaultEvent) + Clone + Send + 'static,
    {
        for ev in self.events.clone() {
            let h = handler.clone();
            sched.schedule_boxed(ev.at, move |w, s| h(w, s, &ev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> FaultDomain {
        FaultDomain {
            gpus: 16,
            nodes: 2,
            nics_per_node: 4,
            links: (0..12).map(LinkId).collect(),
        }
    }

    #[test]
    fn randomized_plans_replay_byte_identically() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::randomized(42, &domain(), &cfg);
        let b = FaultPlan::randomized(42, &domain(), &cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::randomized(43, &domain(), &cfg);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn events_are_time_ordered_and_within_kind_invariants() {
        let cfg = FaultPlanConfig {
            faults: 32,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::randomized(7, &domain(), &cfg);
        let evs = plan.events();
        assert!(evs.windows(2).all(|w| w[0].at <= w[1].at));
        for e in evs {
            match &e.kind {
                FaultKind::LinkDegrade { factor, .. } => {
                    assert!(*factor > 0.0 && *factor <= 1.0);
                }
                FaultKind::GpuFail { gpu }
                | FaultKind::GpuRestore { gpu }
                | FaultKind::RouteGpuLoss { gpu }
                | FaultKind::RouteGpuRestore { gpu } => assert!(*gpu < 16),
                FaultKind::NicFail { node, nic } | FaultKind::NicRestore { node, nic } => {
                    assert!(*node < 2 && *nic < 4);
                }
                FaultKind::LinkRestore { .. } => {}
                // Control-plane faults come only from `randomized_ctl`.
                FaultKind::WorkerDeath
                | FaultKind::WorkerRestart
                | FaultKind::HeartbeatLoss { .. } => {
                    unreachable!("randomized() must not emit ctl faults")
                }
            }
        }
    }

    #[test]
    fn randomized_ctl_plans_are_deterministic_and_well_formed() {
        let cfg = CtlFaultConfig::default();
        let plans = FaultPlan::randomized_ctl(99, 4, 0, &cfg);
        assert_eq!(plans, FaultPlan::randomized_ctl(99, 4, 0, &cfg));
        assert_eq!(plans.len(), 4);
        let mut deaths = 0;
        let mut losses = 0;
        for (g, plan) in plans.iter().enumerate() {
            assert!(plan.events().windows(2).all(|w| w[0].at <= w[1].at));
            for e in plan.events() {
                assert!(e.at.as_nanos() <= cfg.horizon.saturating_mul(2).as_nanos());
                match &e.kind {
                    FaultKind::WorkerDeath | FaultKind::WorkerRestart => {
                        // Deaths never land on the router group.
                        assert_ne!(g, 0);
                        if matches!(e.kind, FaultKind::WorkerDeath) {
                            deaths += 1;
                        }
                    }
                    FaultKind::HeartbeatLoss { group, drops } => {
                        // Losses are router-side drop budgets for worker groups.
                        assert_eq!(g, 0);
                        assert!(*group != 0 && *group < 4);
                        assert!(*drops >= 1 && *drops <= cfg.max_drops);
                        losses += 1;
                    }
                    other => unreachable!("unexpected data-plane fault {other:?}"),
                }
            }
        }
        assert_eq!(deaths, cfg.deaths);
        assert_eq!(losses, cfg.hb_losses);
    }

    #[test]
    fn randomized_ctl_single_group_degenerates_to_empty_plans() {
        // With no worker groups there is nothing to kill or mute.
        let plans = FaultPlan::randomized_ctl(7, 1, 0, &CtlFaultConfig::default());
        assert_eq!(plans.len(), 1);
        assert!(plans[0].is_empty());
    }

    impl crate::engine::EventWorld for Vec<(u64, bool)> {
        type Event = ();
        fn dispatch(&mut self, _s: &mut crate::engine::Scheduler<Self>, _ev: ()) {}
    }

    #[test]
    fn install_schedules_all_events_in_plan_order() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent {
                at: SimTime(2_000),
                kind: FaultKind::GpuFail { gpu: 1 },
            },
            FaultEvent {
                at: SimTime(1_000),
                kind: FaultKind::LinkDegrade {
                    link: LinkId(3),
                    factor: 0.1,
                },
            },
        ]);
        // scripted() sorts by time.
        assert_eq!(plan.events()[0].at, SimTime(1_000));
        let mut sim = crate::engine::Simulation::new(Vec::<(u64, bool)>::new());
        plan.install(&mut sim.sched, |w: &mut Vec<(u64, bool)>, _s, ev| {
            w.push((ev.at.0, matches!(ev.kind, FaultKind::GpuFail { .. })));
        });
        sim.run();
        assert_eq!(sim.world, vec![(1_000, false), (2_000, true)]);
    }
}
