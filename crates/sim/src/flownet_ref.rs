//! Reference (non-incremental) flow allocator.
//!
//! This is the original full-recompute implementation of [`crate::FlowNet`]:
//! flows in a `BTreeMap`, per-link member lists rebuilt from scratch and
//! progressive filling re-run over *every* flow on *every* event, eager
//! settling of all flows, and O(flows) scans for `next_completion` and
//! `link_utilization`.
//!
//! It is kept for two purposes:
//!
//! * **Oracle.** The incremental, contention-scoped allocator must produce
//!   the same rates; property tests drive both with identical event
//!   sequences over randomized topologies and compare (see
//!   `tests/flownet_oracle.rs`).
//! * **Baseline.** The `bench_flownet` Criterion group measures the
//!   incremental allocator's speedup against this implementation under
//!   churn.
//!
//! The only intentional semantic change from the seed version is shared
//! with the production allocator: non-positive caps are normalised to
//! "uncapped" and the effective cap is `cap.max(floor)`, so a contradictory
//! throttle can no longer stall a flow below its SLO floor (or forever).

use std::collections::BTreeMap;

use crate::flownet::{FlowId, FlowNetError, FlowOptions, LinkId, EPS_BYTES, EPS_RATE};
use crate::time::{SimDuration, SimTime};

#[derive(Clone, Debug)]
struct Link {
    capacity: f64,
}

#[derive(Clone, Debug)]
struct Flow {
    path: Vec<LinkId>,
    remaining: f64,
    rate: f64,
    floor: f64,
    cap: f64,
    weight: f64,
}

impl Flow {
    fn effective_cap(&self) -> f64 {
        self.cap.max(self.floor)
    }
}

fn normalize_cap(cap: f64) -> f64 {
    if cap > 0.0 {
        cap
    } else {
        f64::INFINITY
    }
}

/// Full-recompute reference allocator. Mirrors the [`crate::FlowNet`] API
/// surface used by tests and benches; every event settles all flows and
/// re-runs progressive filling globally.
pub struct ReferenceNet {
    links: Vec<Link>,
    flows: BTreeMap<u64, Flow>,
    now: SimTime,
    next_id: u64,
    version: u64,
}

impl Default for ReferenceNet {
    fn default() -> Self {
        Self::new()
    }
}

impl ReferenceNet {
    pub fn new() -> Self {
        ReferenceNet {
            links: Vec::new(),
            flows: BTreeMap::new(),
            now: SimTime::ZERO,
            next_id: 0,
            version: 0,
        }
    }

    pub fn add_link(&mut self, _name: impl Into<String>, capacity: f64) -> LinkId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { capacity });
        id
    }

    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn start_flow(
        &mut self,
        now: SimTime,
        path: Vec<LinkId>,
        bytes: f64,
        opts: FlowOptions,
    ) -> Result<FlowId, FlowNetError> {
        if path.is_empty() {
            return Err(FlowNetError::EmptyPath);
        }
        for &l in &path {
            if l.0 as usize >= self.links.len() {
                return Err(FlowNetError::UnknownLink(l));
            }
        }
        self.settle(now);
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                path,
                remaining: bytes.max(0.0),
                rate: 0.0,
                floor: opts.floor.max(0.0),
                cap: normalize_cap(opts.cap),
                weight: if opts.weight > 0.0 { opts.weight } else { 1.0 },
            },
        );
        self.recompute_rates();
        Ok(FlowId(id))
    }

    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Result<(), FlowNetError> {
        self.settle(now);
        if self.flows.remove(&id.0).is_none() {
            return Err(FlowNetError::UnknownFlow(id));
        }
        self.recompute_rates();
        Ok(())
    }

    pub fn set_floor(&mut self, now: SimTime, id: FlowId, floor: f64) -> Result<(), FlowNetError> {
        self.settle(now);
        let flow = self
            .flows
            .get_mut(&id.0)
            .ok_or(FlowNetError::UnknownFlow(id))?;
        flow.floor = floor.max(0.0);
        self.recompute_rates();
        Ok(())
    }

    pub fn set_cap(&mut self, now: SimTime, id: FlowId, cap: f64) -> Result<(), FlowNetError> {
        self.settle(now);
        let flow = self
            .flows
            .get_mut(&id.0)
            .ok_or(FlowNetError::UnknownFlow(id))?;
        flow.cap = normalize_cap(cap);
        self.recompute_rates();
        Ok(())
    }

    pub fn set_link_capacity(&mut self, now: SimTime, link: LinkId, capacity: f64) {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite"
        );
        self.settle(now);
        self.links[link.0 as usize].capacity = capacity;
        self.recompute_rates();
    }

    pub fn reroute_flow(
        &mut self,
        now: SimTime,
        id: FlowId,
        new_path: Vec<LinkId>,
    ) -> Result<(), FlowNetError> {
        if new_path.is_empty() {
            return Err(FlowNetError::EmptyPath);
        }
        for &l in &new_path {
            if l.0 as usize >= self.links.len() {
                return Err(FlowNetError::UnknownLink(l));
            }
        }
        self.settle(now);
        let flow = self
            .flows
            .get_mut(&id.0)
            .ok_or(FlowNetError::UnknownFlow(id))?;
        flow.path = new_path;
        self.recompute_rates();
        Ok(())
    }

    pub fn set_weight(
        &mut self,
        now: SimTime,
        id: FlowId,
        weight: f64,
    ) -> Result<(), FlowNetError> {
        self.settle(now);
        let flow = self
            .flows
            .get_mut(&id.0)
            .ok_or(FlowNetError::UnknownFlow(id))?;
        flow.weight = if weight > 0.0 { weight } else { 1.0 };
        self.recompute_rates();
        Ok(())
    }

    pub fn flow_rate(&self, id: FlowId) -> Result<f64, FlowNetError> {
        self.flows
            .get(&id.0)
            .map(|f| f.rate)
            .ok_or(FlowNetError::UnknownFlow(id))
    }

    pub fn flow_remaining(&self, id: FlowId) -> Result<f64, FlowNetError> {
        self.flows
            .get(&id.0)
            .map(|f| f.remaining)
            .ok_or(FlowNetError::UnknownFlow(id))
    }

    pub fn link_utilization(&self, link: LinkId) -> f64 {
        self.flows
            .values()
            .flat_map(|f| f.path.iter().filter(|&&p| p == link).map(|_| f.rate))
            .sum()
    }

    pub fn next_completion(&self) -> Option<SimTime> {
        self.flows
            .values()
            .filter(|f| f.rate > EPS_RATE || f.remaining <= EPS_BYTES)
            .map(|f| {
                if f.remaining <= EPS_BYTES {
                    self.now
                } else {
                    self.now + SimDuration::from_secs_f64(f.remaining / f.rate)
                }
            })
            .min()
    }

    pub fn advance_to(&mut self, now: SimTime) -> Vec<FlowId> {
        self.settle(now);
        let done: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= EPS_BYTES)
            .map(|(&id, _)| id)
            .collect();
        if done.is_empty() {
            return Vec::new();
        }
        for id in &done {
            self.flows.remove(id);
        }
        self.recompute_rates();
        done.into_iter().map(FlowId).collect()
    }

    fn settle(&mut self, now: SimTime) {
        if now <= self.now {
            return;
        }
        let dt = (now - self.now).as_secs_f64();
        for flow in self.flows.values_mut() {
            flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
        }
        self.now = now;
    }

    fn recompute_rates(&mut self) {
        self.version += 1;
        if self.flows.is_empty() {
            return;
        }

        let ids: Vec<u64> = self.flows.keys().copied().collect();
        let n = ids.len();
        let mut rate = vec![0.0f64; n];
        let mut frozen = vec![false; n];

        // Per-link members, rebuilt from scratch on every event.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.links.len()];
        for (idx, id) in ids.iter().enumerate() {
            for &l in &self.flows[id].path {
                members[l.0 as usize].push(idx);
            }
        }

        // Step 1: floors, with proportional scaling on oversubscribed links.
        let mut scale = vec![1.0f64; n];
        for (li, link) in self.links.iter().enumerate() {
            let total_floor: f64 = members[li].iter().map(|&i| self.flows[&ids[i]].floor).sum();
            if total_floor > link.capacity {
                let factor = link.capacity / total_floor;
                for &i in &members[li] {
                    scale[i] = scale[i].min(factor);
                }
            }
        }
        for (i, id) in ids.iter().enumerate() {
            let f = &self.flows[id];
            rate[i] = (f.floor * scale[i]).min(f.effective_cap());
            if f.effective_cap() - rate[i] <= EPS_RATE || f.remaining <= EPS_BYTES {
                frozen[i] = true;
            }
        }

        // Step 2: progressive filling of the idle bandwidth.
        loop {
            if frozen.iter().all(|&f| f) {
                break;
            }
            let mut limiting_inc = f64::INFINITY;
            for (li, link) in self.links.iter().enumerate() {
                let used: f64 = members[li].iter().map(|&i| rate[i]).sum();
                let active_weight: f64 = members[li]
                    .iter()
                    .filter(|&&i| !frozen[i])
                    .map(|&i| self.flows[&ids[i]].weight)
                    .sum();
                if active_weight > 0.0 {
                    let residual = (link.capacity - used).max(0.0);
                    limiting_inc = limiting_inc.min(residual / active_weight);
                }
            }
            for (i, id) in ids.iter().enumerate() {
                if !frozen[i] {
                    let f = &self.flows[id];
                    limiting_inc = limiting_inc.min((f.effective_cap() - rate[i]) / f.weight);
                }
            }
            if !limiting_inc.is_finite() {
                break;
            }
            if limiting_inc > 0.0 {
                for (i, id) in ids.iter().enumerate() {
                    if !frozen[i] {
                        rate[i] += limiting_inc * self.flows[id].weight;
                    }
                }
            }
            let mut any_frozen = false;
            for (li, link) in self.links.iter().enumerate() {
                let used: f64 = members[li].iter().map(|&i| rate[i]).sum();
                if link.capacity - used <= EPS_RATE {
                    for &i in &members[li] {
                        if !frozen[i] {
                            frozen[i] = true;
                            any_frozen = true;
                        }
                    }
                }
            }
            for (i, id) in ids.iter().enumerate() {
                if !frozen[i] && self.flows[id].effective_cap() - rate[i] <= EPS_RATE {
                    frozen[i] = true;
                    any_frozen = true;
                }
            }
            if !any_frozen {
                break;
            }
        }

        for (i, id) in ids.iter().enumerate() {
            if let Some(f) = self.flows.get_mut(id) {
                f.rate = rate[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_basic_fair_share() {
        let mut net = ReferenceNet::new();
        let l = net.add_link("l", 10e9);
        let f1 = net
            .start_flow(SimTime::ZERO, vec![l], 1e9, FlowOptions::default())
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, vec![l], 1e9, FlowOptions::default())
            .unwrap();
        assert!((net.flow_rate(f1).unwrap() - 5e9).abs() < 2.0);
        assert!((net.flow_rate(f2).unwrap() - 5e9).abs() < 2.0);
    }

    #[test]
    fn reference_applies_cap_normalization() {
        let mut net = ReferenceNet::new();
        let l = net.add_link("l", 10e9);
        let f = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                1e9,
                FlowOptions {
                    cap: 0.0,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!((net.flow_rate(f).unwrap() - 10e9).abs() < 2.0);
        assert!(net.next_completion().is_some());
    }
}
