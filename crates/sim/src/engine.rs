//! Discrete-event scheduler.
//!
//! The engine is generic over a world type `W`: events are boxed closures
//! `FnOnce(&mut W, &mut Scheduler<W>)`, so any subsystem can schedule follow-up
//! work without the engine knowing about it. Events at the same instant fire
//! in scheduling order (a monotonically increasing sequence number breaks
//! ties), which makes every run deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

type BoxedEvent<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    event: BoxedEvent<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The event queue and simulated clock.
///
/// Handed to every firing event so it can schedule more events.
pub struct Scheduler<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    /// Observability handle. The scheduler is the source of truth for
    /// virtual time, so it mirrors the clock into the recorder before each
    /// dispatch; world code then emits events without threading `now`.
    rec: grouter_obs::Recorder,
}

impl<W> Default for Scheduler<W> {
    fn default() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            rec: grouter_obs::Recorder::disabled(),
        }
    }
}

impl<W> Scheduler<W> {
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to `now`
    /// so the clock never runs backwards.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            event: Box::new(event),
        });
    }

    /// Schedule `event` to fire `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedule `event` to fire immediately (after already-queued events at
    /// the current instant).
    pub fn schedule_now<F>(&mut self, event: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.schedule_at(self.now, event);
    }

    fn pop(&mut self) -> Option<Scheduled<W>> {
        self.queue.pop()
    }

    /// Attach a recorder whose virtual clock follows this scheduler.
    pub fn set_recorder(&mut self, rec: grouter_obs::Recorder) {
        rec.set_now(self.now.as_nanos());
        self.rec = rec;
    }

    /// The attached recorder (disabled handle when none was attached).
    pub fn recorder(&self) -> &grouter_obs::Recorder {
        &self.rec
    }
}

/// A world plus its scheduler; owns the run loop.
pub struct Simulation<W> {
    pub world: W,
    pub sched: Scheduler<W>,
}

impl<W> Simulation<W> {
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Fire the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.sched.now);
                self.sched.now = ev.at;
                self.sched.rec.set_now(ev.at.as_nanos());
                (ev.event)(&mut self.world, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue drains or the clock would pass `deadline`.
    ///
    /// Events scheduled exactly at `deadline` still fire. On return the clock
    /// reads `min(deadline, time of last fired event)`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next_at) = self.sched.queue.peek().map(|e| e.at) {
            if next_at > deadline {
                break;
            }
            self.step();
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(World::default());
        sim.sched
            .schedule_at(SimTime(30), |w: &mut World, _| w.log.push((30, "c")));
        sim.sched
            .schedule_at(SimTime(10), |w: &mut World, _| w.log.push((10, "a")));
        sim.sched
            .schedule_at(SimTime(20), |w: &mut World, _| w.log.push((20, "b")));
        sim.run();
        assert_eq!(sim.world.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(sim.now(), SimTime(30));
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut sim = Simulation::new(World::default());
        for name in ["first", "second", "third"] {
            sim.sched
                .schedule_at(SimTime(5), move |w: &mut World, _| w.log.push((5, name)));
        }
        sim.run();
        let names: Vec<_> = sim.world.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(World::default());
        sim.sched
            .schedule_at(SimTime(10), |_, s: &mut Scheduler<World>| {
                s.schedule_in(SimDuration(5), |w: &mut World, _| w.log.push((15, "child")));
            });
        sim.run();
        assert_eq!(sim.world.log, vec![(15, "child")]);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim = Simulation::new(World::default());
        sim.sched
            .schedule_at(SimTime(100), |_, s: &mut Scheduler<World>| {
                // deliberately in the past
                s.schedule_at(SimTime(1), |w: &mut World, _| w.log.push((100, "clamped")));
            });
        sim.run();
        assert_eq!(sim.world.log, vec![(100, "clamped")]);
        assert_eq!(sim.now(), SimTime(100));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(World::default());
        sim.sched
            .schedule_at(SimTime(10), |w: &mut World, _| w.log.push((10, "in")));
        sim.sched
            .schedule_at(SimTime(50), |w: &mut World, _| w.log.push((50, "out")));
        sim.run_until(SimTime(20));
        assert_eq!(sim.world.log, vec![(10, "in")]);
        // the out-of-window event is still pending
        assert_eq!(sim.sched.pending(), 1);
        sim.run();
        assert_eq!(sim.world.log.len(), 2);
    }

    #[test]
    fn run_until_inclusive_of_deadline() {
        let mut sim = Simulation::new(World::default());
        sim.sched
            .schedule_at(SimTime(20), |w: &mut World, _| w.log.push((20, "edge")));
        sim.run_until(SimTime(20));
        assert_eq!(sim.world.log, vec![(20, "edge")]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the schedule order, events fire in (time, seq) order and
        /// the clock never runs backwards.
        #[test]
        fn events_fire_in_nondecreasing_time(times in proptest::collection::vec(0u64..10_000, 1..64)) {
            #[derive(Default)]
            struct W {
                fired: Vec<u64>,
            }
            let mut sim = Simulation::new(W::default());
            for &t in &times {
                sim.sched.schedule_at(SimTime(t), move |w: &mut W, s: &mut Scheduler<W>| {
                    w.fired.push(s.now().as_nanos());
                });
            }
            sim.run();
            prop_assert_eq!(sim.world.fired.len(), times.len());
            prop_assert!(sim.world.fired.windows(2).all(|w| w[0] <= w[1]));
            let mut sorted = times.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sim.world.fired, &sorted);
        }

        /// Chained scheduling (each event schedules a follow-up) terminates
        /// with the clock at the final hop.
        #[test]
        fn chained_events_advance_monotonically(hops in 1u64..50, step in 1u64..1000) {
            struct W {
                remaining: u64,
                step: u64,
            }
            fn hop(w: &mut W, s: &mut Scheduler<W>) {
                if w.remaining > 0 {
                    w.remaining -= 1;
                    let d = SimDuration(w.step);
                    s.schedule_in(d, hop);
                }
            }
            let mut sim = Simulation::new(W { remaining: hops, step });
            sim.sched.schedule_at(SimTime::ZERO, hop);
            sim.run();
            // The k-th firing happens at k·step; the last event (which sees
            // remaining == 0 and schedules nothing) fires at hops·step.
            prop_assert_eq!(sim.now().as_nanos(), hops * step);
        }
    }
}
