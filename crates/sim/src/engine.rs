//! Discrete-event scheduler with a typed, allocation-free hot path.
//!
//! The original engine boxed every event (`Box<dyn FnOnce>`) into one
//! `BinaryHeap`: one heap allocation plus `O(log n)` comparisons per event,
//! at every step of every run. This version separates the two concerns:
//!
//! * **What fires** is a typed value: the world implements [`EventWorld`]
//!   with an associated `Event` enum and a `dispatch` function. Scheduling a
//!   typed event moves a small value into a recycled buffer — no allocation
//!   in steady state. Rare/cold callers (fault plans, tests, one-off hooks)
//!   can still pass closures through the [`Scheduler::schedule_boxed`]
//!   escape hatch.
//! * **When it fires** is a bucketed timeline: events sharing a virtual
//!   timestamp live in one bucket (a recycled `VecDeque` in a slab), and the
//!   heap orders *buckets*, not events. A wave of flow completions landing
//!   on the same instant — the common case under contention, where one
//!   allocation pass finishes many transfers at once — costs one heap pop
//!   for the whole wave instead of one per event.
//!
//! Ordering semantics are identical to the boxed engine and are pinned by
//! golden tests: events fire in nondecreasing time, ties fire in schedule
//! order (typed and boxed interleaved alike), scheduling in the past clamps
//! to `now`.
//!
//! [`Scheduler::force_boxed_dispatch`] switches a fresh scheduler back to
//! the historical boxed-closure `BinaryHeap` core so benchmarks can measure
//! the dispatch layers against each other in the same build.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::fxhash::FxHashMap;
use crate::time::{SimDuration, SimTime};

/// A world driven by typed events.
///
/// `dispatch` is the single decode point: the engine hands back the event
/// value and the world routes it to its handler. Worlds that only ever use
/// boxed closures can set `type Event = ()` and leave `dispatch` empty.
pub trait EventWorld: Sized {
    type Event;
    fn dispatch(&mut self, sched: &mut Scheduler<Self>, ev: Self::Event);
}

/// Boxed-closure events are `Send` so a whole `Simulation` (world plus
/// pending timeline) can move to a shard worker thread; see
/// [`crate::shard`].
type BoxedEvent<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>) + Send>;

/// One scheduled unit: a typed event or a boxed closure.
enum Item<W: EventWorld> {
    Typed(W::Event),
    Boxed(BoxedEvent<W>),
}

/// All events sharing one virtual timestamp, in schedule order.
struct Bucket<W: EventWorld> {
    at: SimTime,
    items: VecDeque<Item<W>>,
}

/// Legacy heap entry (`force_boxed_dispatch` mode).
struct Scheduled<W: EventWorld> {
    at: SimTime,
    seq: u64,
    event: BoxedEvent<W>,
}

impl<W: EventWorld> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W: EventWorld> Eq for Scheduled<W> {}
impl<W: EventWorld> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W: EventWorld> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The timeline backend: bucketed slab (default) or the historical
/// boxed-closure heap (benchmark baseline).
enum Timeline<W: EventWorld> {
    Bucketed {
        /// Bucket slab; slots listed in `free` are empty with their
        /// `VecDeque` capacity retained for reuse.
        slots: Vec<Bucket<W>>,
        free: Vec<u32>,
        /// Min-order over live buckets. Exactly one entry per bucket,
        /// pushed at bucket creation and removed only by `take_next` — no
        /// stale entries to skip.
        heap: BinaryHeap<Reverse<(SimTime, u32)>>,
        /// Live bucket for each pending timestamp (including the one being
        /// drained, so same-instant follow-ups append in schedule order).
        by_time: FxHashMap<u64, u32>,
        /// Bucket currently being drained, already popped from the heap.
        current: Option<u32>,
    },
    BoxedHeap {
        queue: BinaryHeap<Scheduled<W>>,
        seq: u64,
    },
}

/// The event queue and simulated clock.
///
/// Handed to every firing event so it can schedule more events.
pub struct Scheduler<W: EventWorld> {
    now: SimTime,
    timeline: Timeline<W>,
    len: usize,
    /// Observability handle. The scheduler is the source of truth for
    /// virtual time, so it mirrors the clock into the recorder before each
    /// dispatch; world code then emits events without threading `now`.
    rec: grouter_obs::Recorder,
}

impl<W: EventWorld> Default for Scheduler<W> {
    fn default() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            timeline: Timeline::Bucketed {
                slots: Vec::new(),
                free: Vec::new(),
                heap: BinaryHeap::new(),
                by_time: FxHashMap::default(),
                current: None,
            },
            len: 0,
            rec: grouter_obs::Recorder::disabled(),
        }
    }
}

impl<W: EventWorld> Scheduler<W> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Switch to the historical boxed-closure `BinaryHeap` core: every
    /// event (typed or not) is heap-boxed and ordered individually. Only
    /// meaningful as a benchmark baseline; must be called before anything
    /// is scheduled.
    pub fn force_boxed_dispatch(&mut self) {
        assert_eq!(self.len, 0, "switch dispatch modes before scheduling");
        self.timeline = Timeline::BoxedHeap {
            queue: BinaryHeap::new(),
            seq: 0,
        };
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.len
    }

    /// Schedule a typed event to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to `now`
    /// so the clock never runs backwards.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, ev: W::Event)
    where
        W::Event: Send + 'static,
    {
        match &mut self.timeline {
            Timeline::Bucketed { .. } => self.push_item(at, Item::Typed(ev)),
            Timeline::BoxedHeap { .. } => {
                // Baseline mode: pay exactly the old cost — one heap Box
                // and one ordered heap entry per event.
                self.push_boxed(
                    at,
                    Box::new(move |w: &mut W, s: &mut Scheduler<W>| w.dispatch(s, ev)),
                );
            }
        }
    }

    /// Schedule a typed event to fire `delay` after the current instant.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, ev: W::Event)
    where
        W::Event: Send + 'static,
    {
        self.schedule_at(self.now.saturating_add(delay), ev);
    }

    /// Schedule a typed event to fire immediately (after already-queued
    /// events at the current instant).
    #[inline]
    pub fn schedule_now(&mut self, ev: W::Event)
    where
        W::Event: Send + 'static,
    {
        self.schedule_at(self.now, ev);
    }

    /// Escape hatch: schedule a closure at absolute time `at`. Costs a heap
    /// allocation — for cold paths (fault plans, tests, one-off hooks), not
    /// steady-state dispatch.
    pub fn schedule_boxed<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
    {
        self.push_boxed(at, Box::new(event));
    }

    /// [`Self::schedule_boxed`] at `now + delay`.
    pub fn schedule_boxed_in<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
    {
        self.schedule_boxed(self.now.saturating_add(delay), event);
    }

    /// [`Self::schedule_boxed`] at the current instant.
    pub fn schedule_boxed_now<F>(&mut self, event: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
    {
        self.schedule_boxed(self.now, event);
    }

    fn push_boxed(&mut self, at: SimTime, event: BoxedEvent<W>) {
        let at = at.max(self.now);
        match &mut self.timeline {
            Timeline::Bucketed { .. } => self.push_item(at, Item::Boxed(event)),
            Timeline::BoxedHeap { queue, seq } => {
                let s = *seq;
                *seq += 1;
                queue.push(Scheduled { at, seq: s, event });
                self.len += 1;
            }
        }
    }

    /// Append an item to the timestamp's bucket, creating (or recycling) the
    /// bucket if this is the first event at that instant.
    #[inline]
    fn push_item(&mut self, at: SimTime, item: Item<W>) {
        let at = at.max(self.now);
        let Timeline::Bucketed {
            slots,
            free,
            heap,
            by_time,
            ..
        } = &mut self.timeline
        else {
            // grouter-lint: allow(no-panic-in-dataplane): push_boxed routes BoxedHeap mode away before calling push_item
            unreachable!("push_item is only called in bucketed mode");
        };
        let slot = *by_time.entry(at.as_nanos()).or_insert_with(|| {
            let slot = match free.pop() {
                Some(s) => {
                    slots[s as usize].at = at;
                    s
                }
                None => {
                    slots.push(Bucket {
                        at,
                        items: VecDeque::new(),
                    });
                    (slots.len() - 1) as u32
                }
            };
            heap.push(Reverse((at, slot)));
            slot
        });
        slots[slot as usize].items.push_back(item);
        self.len += 1;
    }

    /// Pop the next item in (time, schedule) order, advancing through the
    /// current bucket before consulting the heap. Frees a bucket the moment
    /// it empties, so `next_at` never sees a hollow bucket.
    fn take_next(&mut self) -> Option<(SimTime, Item<W>)> {
        match &mut self.timeline {
            Timeline::Bucketed {
                slots,
                free,
                heap,
                by_time,
                current,
            } => {
                loop {
                    if let Some(cur) = *current {
                        let b = &mut slots[cur as usize];
                        if let Some(item) = b.items.pop_front() {
                            let at = b.at;
                            if b.items.is_empty() {
                                by_time.remove(&at.as_nanos());
                                free.push(cur);
                                *current = None;
                            }
                            self.len -= 1;
                            return Some((at, item));
                        }
                        // A bucket is freed the moment its last item is
                        // taken; an empty current bucket cannot persist.
                        by_time.remove(&b.at.as_nanos());
                        free.push(cur);
                        *current = None;
                    }
                    let Reverse((_, slot)) = heap.pop()?;
                    *current = Some(slot);
                }
            }
            Timeline::BoxedHeap { queue, .. } => {
                let ev = queue.pop()?;
                self.len -= 1;
                Some((ev.at, Item::Boxed(ev.event)))
            }
        }
    }

    /// Timestamp of the next pending event, if any. The sharded engine uses
    /// this to compute the global safe window without popping anything.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.next_at()
    }

    /// Timestamp of the next pending event, if any.
    fn next_at(&self) -> Option<SimTime> {
        match &self.timeline {
            Timeline::Bucketed {
                slots,
                heap,
                current,
                ..
            } => {
                // The draining bucket (if any) always precedes the heap: its
                // time is `now` and heap buckets are strictly later.
                if let Some(cur) = *current {
                    if !slots[cur as usize].items.is_empty() {
                        return Some(slots[cur as usize].at);
                    }
                }
                heap.peek().map(|&Reverse((at, _))| at)
            }
            Timeline::BoxedHeap { queue, .. } => queue.peek().map(|e| e.at),
        }
    }

    /// Attach a recorder whose virtual clock follows this scheduler.
    pub fn set_recorder(&mut self, rec: grouter_obs::Recorder) {
        rec.set_now(self.now.as_nanos());
        self.rec = rec;
    }

    /// The attached recorder (disabled handle when none was attached).
    pub fn recorder(&self) -> &grouter_obs::Recorder {
        &self.rec
    }

    /// `engine.timeline` (`--features audit`): the bucketed timeline is
    /// coherent — the pending count equals the sum over live buckets, every
    /// time-index entry points at a bucket stamped with its key, free slots
    /// are empty, and heap entries reference live buckets exactly once.
    #[cfg(feature = "audit")]
    fn audit_timeline(&self) {
        let Timeline::Bucketed {
            slots,
            free,
            heap,
            by_time,
            current,
        } = &self.timeline
        else {
            return;
        };
        grouter_audit::record_hit("engine.timeline");
        let live: Vec<u32> = (0..slots.len() as u32)
            .filter(|s| !free.contains(s))
            .collect();
        let total: usize = live.iter().map(|&s| slots[s as usize].items.len()).sum();
        grouter_audit::check("engine.timeline", total == self.len, || {
            format!("pending count {} != bucket total {total}", self.len)
        });
        // Check in sorted key order: `check` aborts on the first violation,
        // so a corrupt index must name the same entry on every run.
        let mut index: Vec<(u64, u32)> = by_time.iter().map(|(&t, &s)| (t, s)).collect();
        index.sort_unstable();
        for (t, slot) in index {
            grouter_audit::check(
                "engine.timeline",
                slots
                    .get(slot as usize)
                    .is_some_and(|b| b.at.as_nanos() == t)
                    && !free.contains(&slot),
                || format!("time index {t} -> slot {slot} is stale"),
            );
        }
        for &s in free {
            grouter_audit::check(
                "engine.timeline",
                slots[s as usize].items.is_empty(),
                || format!("free slot {s} still holds events"),
            );
        }
        let mut heap_slots: Vec<u32> = heap.iter().map(|&Reverse((_, s))| s).collect();
        heap_slots.sort_unstable();
        let mut expect: Vec<u32> = live
            .iter()
            .copied()
            .filter(|s| Some(*s) != *current)
            .collect();
        expect.sort_unstable();
        grouter_audit::check("engine.timeline", heap_slots == expect, || {
            format!("heap slots {heap_slots:?} != live non-current buckets {expect:?}")
        });
    }
}

/// A world plus its scheduler; owns the run loop.
pub struct Simulation<W: EventWorld> {
    pub world: W,
    pub sched: Scheduler<W>,
}

impl<W: EventWorld> Simulation<W> {
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Fire the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        #[cfg(feature = "audit")]
        if grouter_audit::every("engine.timeline", 64) {
            self.sched.audit_timeline();
        }
        match self.sched.take_next() {
            Some((at, item)) => {
                debug_assert!(at >= self.sched.now);
                self.sched.now = at;
                self.sched.rec.set_now(at.as_nanos());
                match item {
                    Item::Typed(ev) => self.world.dispatch(&mut self.sched, ev),
                    Item::Boxed(f) => f(&mut self.world, &mut self.sched),
                }
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue drains or the clock would pass `deadline`.
    ///
    /// Events scheduled exactly at `deadline` still fire. On return the clock
    /// reads `min(deadline, time of last fired event)`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next_at) = self.sched.next_at() {
            if next_at > deadline {
                break;
            }
            self.step();
        }
    }

    /// Run until the queue drains or the next event would fire at or after
    /// `bound` (strictly exclusive, unlike [`Simulation::run_until`]).
    ///
    /// This is the primitive the conservative sharded engine needs: a shard
    /// may execute exactly the events with `t < horizon` — the horizon
    /// itself is not safe, because a cross-shard message can land there.
    pub fn run_before(&mut self, bound: SimTime) {
        while let Some(next_at) = self.sched.next_at() {
            if next_at >= bound {
                break;
            }
            self.step();
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test world: typed events append `(fire_time_hint, label)` to a log.
    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    impl EventWorld for World {
        type Event = (u64, &'static str);
        fn dispatch(&mut self, _s: &mut Scheduler<Self>, ev: Self::Event) {
            self.log.push(ev);
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(World::default());
        sim.sched.schedule_at(SimTime(30), (30, "c"));
        sim.sched.schedule_at(SimTime(10), (10, "a"));
        sim.sched.schedule_at(SimTime(20), (20, "b"));
        sim.run();
        assert_eq!(sim.world.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(sim.now(), SimTime(30));
    }

    /// Regression: the timeline auditor walks `by_time` in sorted key
    /// order, so a corrupt index with several stale entries aborts naming
    /// the smallest key on every run. Before the sort, the entry named
    /// depended on hash-iteration order (found by grouter-analyze's
    /// determinism-taint pass).
    #[cfg(feature = "audit")]
    #[test]
    fn corrupt_time_index_aborts_on_the_smallest_key() {
        let mut sim = Simulation::new(World::default());
        sim.sched.schedule_at(SimTime(10), (10, "a"));
        let Timeline::Bucketed { by_time, .. } = &mut sim.sched.timeline else {
            panic!("default timeline is bucketed");
        };
        by_time.insert(777, 99);
        by_time.insert(555, 98);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.sched.audit_timeline();
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("time index 555 -> slot 98"), "{msg}");
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut sim = Simulation::new(World::default());
        for name in ["first", "second", "third"] {
            sim.sched.schedule_at(SimTime(5), (5, name));
        }
        sim.run();
        let names: Vec<_> = sim.world.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn typed_and_boxed_ties_interleave_in_schedule_order() {
        let mut sim = Simulation::new(World::default());
        sim.sched.schedule_at(SimTime(5), (5, "typed-1"));
        sim.sched
            .schedule_boxed(SimTime(5), |w: &mut World, _| w.log.push((5, "boxed-2")));
        sim.sched.schedule_at(SimTime(5), (5, "typed-3"));
        sim.sched
            .schedule_boxed(SimTime(5), |w: &mut World, _| w.log.push((5, "boxed-4")));
        sim.run();
        let names: Vec<_> = sim.world.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["typed-1", "boxed-2", "typed-3", "boxed-4"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(World::default());
        sim.sched
            .schedule_boxed(SimTime(10), |_, s: &mut Scheduler<World>| {
                s.schedule_in(SimDuration(5), (15, "child"));
            });
        sim.run();
        assert_eq!(sim.world.log, vec![(15, "child")]);
    }

    #[test]
    fn same_instant_follow_ups_fire_after_queued_ties() {
        // An event firing at t=5 schedules a follow-up at t=5; the follow-up
        // must run after the other already-queued t=5 events (global
        // schedule order), exactly as with the boxed heap.
        let mut sim = Simulation::new(World::default());
        sim.sched
            .schedule_boxed(SimTime(5), |w: &mut World, s: &mut Scheduler<World>| {
                w.log.push((5, "a"));
                s.schedule_now((5, "a-child"));
            });
        sim.sched.schedule_at(SimTime(5), (5, "b"));
        sim.run();
        let names: Vec<_> = sim.world.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "a-child"]);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim = Simulation::new(World::default());
        sim.sched
            .schedule_boxed(SimTime(100), |_, s: &mut Scheduler<World>| {
                // deliberately in the past
                s.schedule_at(SimTime(1), (100, "clamped"));
            });
        sim.run();
        assert_eq!(sim.world.log, vec![(100, "clamped")]);
        assert_eq!(sim.now(), SimTime(100));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(World::default());
        sim.sched.schedule_at(SimTime(10), (10, "in"));
        sim.sched.schedule_at(SimTime(50), (50, "out"));
        sim.run_until(SimTime(20));
        assert_eq!(sim.world.log, vec![(10, "in")]);
        // the out-of-window event is still pending
        assert_eq!(sim.sched.pending(), 1);
        sim.run();
        assert_eq!(sim.world.log.len(), 2);
    }

    #[test]
    fn run_until_inclusive_of_deadline() {
        let mut sim = Simulation::new(World::default());
        sim.sched.schedule_at(SimTime(20), (20, "edge"));
        sim.run_until(SimTime(20));
        assert_eq!(sim.world.log, vec![(20, "edge")]);
    }

    #[test]
    fn bucket_slots_recycle() {
        // Interleaved schedule/drain cycles must reuse bucket slots rather
        // than growing the slab without bound.
        let mut sim = Simulation::new(World::default());
        for round in 0..100u64 {
            for k in 0..4u64 {
                sim.sched.schedule_at(SimTime(round * 10 + k), (round, "e"));
            }
            sim.run();
        }
        assert_eq!(sim.world.log.len(), 400);
        let Timeline::Bucketed { slots, .. } = &sim.sched.timeline else {
            panic!("default mode is bucketed");
        };
        assert!(
            slots.len() <= 8,
            "slab grew to {} slots for 4 concurrent timestamps",
            slots.len()
        );
    }

    #[test]
    fn forced_boxed_mode_matches_bucketed_ordering() {
        let times = [30u64, 10, 10, 50, 10, 30, 0, 50];
        let run = |boxed: bool| -> Vec<(u64, &'static str)> {
            let mut sim = Simulation::new(World::default());
            if boxed {
                sim.sched.force_boxed_dispatch();
            }
            for (i, &t) in times.iter().enumerate() {
                let label: &'static str = ["a", "b", "c", "d", "e", "f", "g", "h"][i];
                sim.sched.schedule_at(SimTime(t), (t, label));
            }
            sim.run();
            sim.world.log
        };
        assert_eq!(run(false), run(true));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    struct W {
        fired: Vec<u64>,
    }

    impl EventWorld for W {
        type Event = ();
        fn dispatch(&mut self, s: &mut Scheduler<Self>, _ev: ()) {
            self.fired.push(s.now().as_nanos());
        }
    }

    proptest! {
        /// Whatever the schedule order, events fire in (time, seq) order and
        /// the clock never runs backwards — typed and boxed schedules alike.
        #[test]
        fn events_fire_in_nondecreasing_time(
            times in proptest::collection::vec(0u64..10_000, 1..64),
            typed_mask in proptest::collection::vec(any::<bool>(), 64),
        ) {
            let mut sim = Simulation::new(W { fired: Vec::new() });
            for (i, &t) in times.iter().enumerate() {
                if typed_mask[i % typed_mask.len()] {
                    sim.sched.schedule_at(SimTime(t), ());
                } else {
                    sim.sched.schedule_boxed(SimTime(t), |w: &mut W, s: &mut Scheduler<W>| {
                        w.fired.push(s.now().as_nanos());
                    });
                }
            }
            sim.run();
            prop_assert_eq!(sim.world.fired.len(), times.len());
            prop_assert!(sim.world.fired.windows(2).all(|w| w[0] <= w[1]));
            let mut sorted = times.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sim.world.fired, &sorted);
        }

        /// Chained scheduling (each event schedules a follow-up) terminates
        /// with the clock at the final hop.
        #[test]
        fn chained_events_advance_monotonically(hops in 1u64..50, step in 1u64..1000) {
            struct Chain {
                remaining: u64,
                step: u64,
            }
            impl EventWorld for Chain {
                type Event = ();
                fn dispatch(&mut self, s: &mut Scheduler<Self>, _ev: ()) {
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        let d = SimDuration(self.step);
                        s.schedule_in(d, ());
                    }
                }
            }
            let mut sim = Simulation::new(Chain { remaining: hops, step });
            sim.sched.schedule_at(SimTime::ZERO, ());
            sim.run();
            // The k-th firing happens at k·step; the last event (which sees
            // remaining == 0 and schedules nothing) fires at hops·step.
            prop_assert_eq!(sim.now().as_nanos(), hops * step);
        }

        /// The bucketed timeline and the legacy boxed heap produce the same
        /// firing sequence for any tie-heavy schedule.
        #[test]
        fn bucketed_equals_boxed_heap(times in proptest::collection::vec(0u64..16, 1..48)) {
            let run = |boxed: bool| {
                let mut sim = Simulation::new(W { fired: Vec::new() });
                if boxed {
                    sim.sched.force_boxed_dispatch();
                }
                for &t in &times {
                    sim.sched.schedule_at(SimTime(t), ());
                }
                sim.run();
                sim.world.fired
            };
            prop_assert_eq!(run(false), run(true));
        }
    }
}
