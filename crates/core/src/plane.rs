//! The GROUTER data plane (paper §4).
//!
//! [`GrouterPlane`] implements [`DataPlane`] with all four components:
//!
//! 1. **Unified data-passing framework** — `Put` detects the producer's GPU
//!    and stores the object *there* (zero-copy via CUDA IPC address
//!    sharing); `Get` resolves the object and moves it once, directly to
//!    the consumer, choosing the pattern-appropriate engine (§4.2).
//! 2. **Fine-grained bandwidth harvesting** — gFn–host traffic fans out
//!    over route-GPU PCIe links, cross-node traffic over multiple NICs;
//!    SLO transfers receive `Rate_least` floors and the tightest SLO gets
//!    the idle bandwidth (§4.3.2).
//! 3. **Topology-aware transfer scheduling** — intra-node transfers use
//!    Algorithm 1 over the node's bandwidth matrix, reserving parallel
//!    NVLink paths that are released when the transfer completes (§4.3.3).
//! 4. **Elastic storage** — pool sizing follows the pre-warm scaler,
//!    migration is request-queue-aware, and migrated objects are restored
//!    proactively when memory frees up (§4.4).

use std::collections::BTreeMap;

use grouter_mem::{AllocError, EvictionPolicy, GrouterPolicy, LruPolicy, ObjectMeta};
use grouter_runtime::dataplane::{
    DataOp, DataPlane, Destination, LegHealth, OpLeg, PlaneCtx, PlaneStats, PutOp,
};
use grouter_sim::rng::DetRng;
use grouter_sim::time::SimDuration;
use grouter_store::{AccessToken, DataId, Location, StoreError};
use grouter_topology::GpuRef;
use grouter_transfer::plan::{
    plan_cross_node, plan_d2h, plan_h2d, plan_host_to_host, plan_intra_node, plan_shm, PlannedFlow,
    TransferPlan,
};

use crate::config::GrouterConfig;

/// The GPU-centric data plane.
#[derive(Debug)]
pub struct GrouterPlane {
    cfg: GrouterConfig,
    /// Randomness only used when the unified framework is ablated away
    /// (random store GPU, NVSHMEM-style).
    rng: DetRng,
    /// Objects migrated to host memory and the GPU they should return to.
    migrated_home: BTreeMap<u64, GpuRef>,
    stats: PlaneStats,
}

impl GrouterPlane {
    pub fn new(cfg: GrouterConfig) -> GrouterPlane {
        GrouterPlane {
            cfg,
            rng: DetRng::new(0x6706_7265),
            migrated_home: BTreeMap::new(),
            stats: PlaneStats::default(),
        }
    }

    pub fn config(&self) -> GrouterConfig {
        self.cfg
    }

    /// Stage a host-bound leg through the node's circular pinned buffer
    /// (§4.3.2): reuse is free; overflow falls back to an ad-hoc pinned
    /// allocation whose latency is added to the leg setup.
    fn apply_pinned(&self, ctx: &mut PlaneCtx<'_>, leg: &mut OpLeg) {
        let node = leg.nv_node;
        let want = grouter_sim::params::PINNED_STAGE_BYTES.min(leg.plan.total_bytes);
        if want <= 0.0 {
            return;
        }
        let grant = ctx.pinned[node].acquire(want);
        leg.plan.setup = leg.plan.setup + grant.latency;
        if !grant.pinned_fresh {
            leg.pinned_release = Some((node, want));
        }
    }

    /// Attach `Rate_least` floors and the tightest-SLO weight to a PCIe/NIC
    /// leg (§4.3.2). No-op without bandwidth harvesting or without an SLO.
    fn apply_slo(&self, ctx: &mut PlaneCtx<'_>, leg: &mut OpLeg) {
        if !self.cfg.bandwidth_harvesting {
            return;
        }
        let Some(slo) = ctx.slo else {
            return;
        };
        if leg.plan.flows.is_empty() || leg.plan.total_bytes <= 0.0 {
            return;
        }
        let node = leg.nv_node;
        // The bandwidth domain is what this plan can reach: the sum of its
        // paths' bottleneck capacities.
        let domain_bw: f64 = leg
            .plan
            .flows
            .iter()
            .map(|f| {
                f.links
                    .iter()
                    .map(|&l| ctx.net.link_capacity(l))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        let token = ctx.rates[node].register(ctx.now, leg.plan.total_bytes, slo);
        for flow in &mut leg.plan.flows {
            flow.opts = ctx.rates[node].flow_options(token, flow.bytes, domain_bw);
        }
        leg.rate_token = Some((node, token));
        if ctx.trace.on(grouter_obs::Comp::Plane) {
            use grouter_transfer::rate::{rate_least_typed, RateLeast};
            let guaranteed = matches!(
                rate_least_typed(leg.plan.total_bytes, slo, domain_bw),
                RateLeast::Guaranteed(_)
            );
            let floor: f64 = leg.plan.flows.iter().map(|f| f.opts.floor).sum();
            let weight = leg.plan.flows.first().map_or(0.0, |f| f.opts.weight);
            ctx.trace.instant(
                grouter_obs::Comp::Plane,
                "rate_clamp",
                grouter_obs::Ids::NONE.with_flow(token),
                vec![
                    ("node", node.into()),
                    ("bytes", leg.plan.total_bytes.into()),
                    ("domain_bw", domain_bw.into()),
                    ("floor", floor.into()),
                    ("weight", weight.into()),
                    ("guaranteed", guaranteed.into()),
                ],
            );
            ctx.trace.count(grouter_obs::Comp::Plane, "rate_clamps", 1);
        }
    }

    /// Build an intra-node gFn–gFn leg through the node's reservation
    /// ledger: Algorithm 1 path selection with direct-path priority —
    /// indirect occupants of the direct edge are reassigned to alternative
    /// routes (§4.3.3), and the executor re-paths their in-flight flows.
    fn ledger_intra_leg(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        node: usize,
        src: usize,
        dst: usize,
        bytes: f64,
    ) -> OpLeg {
        use grouter_sim::params;
        let max_hops = if ctx.topo.has_nvswitch() {
            1
        } else {
            self.cfg.max_hops
        };
        let (res, sel, rebalances) =
            ctx.ledgers[node].reserve(src, dst, max_hops, self.cfg.max_paths);
        // Resolve each selected GPU route to its links up front. A hop
        // without an NVLink edge cannot happen while the path cache is
        // epoch-coherent with the topology; if it ever does, that path is
        // dropped and planning degrades rather than crashing the data plane.
        let routed: Vec<(grouter_topology::NvPath, Vec<grouter_sim::LinkId>)> = sel
            .paths
            .into_iter()
            .filter_map(|p| {
                let mut links = Vec::new();
                for hop in p.gpus.windows(2) {
                    links.extend(ctx.topo.nvlink_edge(node, hop[0], hop[1])?);
                }
                Some((p, links))
            })
            .collect();
        if routed.is_empty() {
            // No NVLink route (all masked out by failures, or none existed):
            // fall back to the single-path planner (PCIe peer-to-peer or
            // shortest route). The leg is typed Degraded so the executor's
            // recovery log and the plane stats surface the downgrade instead
            // of silently absorbing it.
            let plan = plan_intra_node(
                ctx.topo,
                ctx.net,
                None,
                node,
                src,
                dst,
                bytes,
                &grouter_transfer::plan::PlanConfig::single_path(),
            );
            ctx.ledgers[node].release(res);
            let mut leg = OpLeg::new(plan, node);
            leg.health = LegHealth::Degraded;
            self.stats.degraded_legs += 1;
            return leg;
        }
        let caps: Vec<f64> = routed.iter().map(|(p, _)| p.rate).collect();
        let shares = grouter_transfer::chunk::proportional_split(bytes, &caps);
        // Consume the selection: routes move into the planned flows instead
        // of being re-cloned per path.
        let flows: Vec<PlannedFlow> = routed
            .into_iter()
            .zip(shares)
            .map(|((p, links), share)| PlannedFlow {
                links,
                bytes: share,
                opts: Default::default(),
                nv_reservation: None, // the ledger owns the reservation
                route: Some(p.gpus),
            })
            .collect();
        let plan = TransferPlan {
            flows,
            setup: params::IPC_MAP_FIRST + params::DMA_LAUNCH + params::CHUNK_OVERHEAD,
            total_bytes: bytes,
        };
        let mut leg = OpLeg::new(plan, node);
        leg.ledger_release = Some((node, res));
        leg.reroutes = rebalances.into_iter().map(|rb| (node, rb)).collect();
        leg
    }

    /// Allocate `bytes` of pool space on `gpu`, migrating victims to host
    /// memory if needed (queue-aware with ES, LRU without). Returns the
    /// allocation latency and the migration legs; `Err(())` when the object
    /// can never fit (caller falls back to host storage).
    fn alloc(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        gpu: GpuRef,
        bytes: f64,
    ) -> Result<(SimDuration, Vec<OpLeg>), ()> {
        let idx = ctx.pool_index(gpu);
        match ctx.pools[idx].try_alloc(bytes) {
            Ok(grant) => Ok((grant.latency, Vec::new())),
            Err(AllocError::NeedsEviction { shortfall }) => {
                let legs = self.migrate(ctx, gpu, shortfall);
                match ctx.pools[idx].try_alloc(bytes) {
                    Ok(grant) => Ok((grant.latency, legs)),
                    Err(_) => Err(()),
                }
            }
            Err(AllocError::TooLarge) => Err(()),
        }
    }

    /// Migrate at least `need` bytes off `gpu` to host memory.
    fn migrate(&mut self, ctx: &mut PlaneCtx<'_>, gpu: GpuRef, need: f64) -> Vec<OpLeg> {
        let entries = ctx.store.entries_at(Location::Gpu(gpu));
        let metas: Vec<ObjectMeta> = entries
            .iter()
            .map(|e| ObjectMeta {
                key: e.id.0,
                bytes: e.bytes,
                last_access: e.last_access,
                next_use: e.next_use,
            })
            .collect();
        let victims = if self.cfg.elastic_storage {
            GrouterPolicy.select_victims(&metas, need)
        } else {
            LruPolicy.select_victims(&metas, need)
        };
        let host_cfg = self.cfg.host_cfg();
        let mut legs = Vec::new();
        for v in victims {
            let id = DataId(v);
            // Victims were selected from a store snapshot taken above, so
            // both lookups hold; a vanished victim is skipped, not fatal.
            let Some(entry) = ctx.store.peek(id).cloned() else {
                continue;
            };
            if ctx.store.relocate(id, Location::Host(gpu.node)).is_err() {
                continue;
            }
            legs.push(OpLeg::new(
                plan_d2h(ctx.topo, ctx.net, gpu.node, gpu.gpu, entry.bytes, &host_cfg),
                gpu.node,
            ));
            let idx = ctx.pool_index(gpu);
            ctx.pools[idx].free(entry.bytes);
            self.stats.migrations += 1;
            if self.cfg.elastic_storage {
                self.migrated_home.insert(v, gpu);
            }
        }
        legs
    }

    /// Proactively restore migrated objects to `gpu` while pool space
    /// allows (§4.4.2). Soonest-needed first; each restoration is its own
    /// background operation.
    fn restores(&mut self, ctx: &mut PlaneCtx<'_>, gpu: GpuRef) -> Vec<DataOp> {
        if !self.cfg.elastic_storage || !self.cfg.proactive_restore {
            return Vec::new();
        }
        let candidates: Vec<ObjectMeta> = self
            .migrated_home
            .iter()
            .filter(|&(_, &home)| home == gpu)
            .filter_map(|(&id, _)| {
                let entry = ctx.store.peek(DataId(id))?;
                if !matches!(entry.location, Location::Host(_)) {
                    return None;
                }
                Some(ObjectMeta {
                    key: id,
                    bytes: entry.bytes,
                    last_access: entry.last_access,
                    next_use: entry.next_use,
                })
            })
            .collect();
        let order = GrouterPolicy.restore_order(&candidates);
        let host_cfg = self.cfg.host_cfg();
        let mut ops = Vec::new();
        for key in order {
            let id = DataId(key);
            // Candidates come from the store scan above; a candidate that
            // vanished in between is skipped, not fatal.
            let Some(bytes) = ctx.store.peek(id).map(|e| e.bytes) else {
                continue;
            };
            let idx = ctx.pool_index(gpu);
            // Leave headroom for incoming puts: restoring into a full pool
            // would just force the next put to evict again (thrash), and the
            // restore traffic would contend with critical-path transfers.
            if ctx.pools[idx].used() + bytes > 0.7 * ctx.pools[idx].storage_cap() {
                break;
            }
            let Ok(grant) = ctx.pools[idx].try_alloc(bytes) else {
                break; // no headroom; stop restoring
            };
            if ctx.store.relocate(id, Location::Gpu(gpu)).is_err() {
                // Undo the reservation; the object is gone from the store.
                ctx.pools[idx].free(bytes);
                continue;
            }
            self.migrated_home.remove(&key);
            self.stats.restores += 1;
            ops.push(DataOp {
                control_latency: grant.latency,
                legs: vec![OpLeg::new(
                    plan_h2d(ctx.topo, ctx.net, gpu.node, gpu.gpu, bytes, &host_cfg),
                    gpu.node,
                )],
            });
        }
        ops
    }

    /// Track demand and resize the pool toward the pre-warm target (§4.4.1).
    fn resize_pool(&self, ctx: &mut PlaneCtx<'_>, gpu: GpuRef) {
        if !self.cfg.elastic_storage {
            return;
        }
        let idx = ctx.pool_index(gpu);
        let target = ctx.scalers[idx].target_bytes(ctx.now);
        if target > ctx.pools[idx].reserved() {
            ctx.pools[idx].prewarm_toward(target);
        } else {
            ctx.pools[idx].reclaim_toward(target);
        }
    }
}

impl DataPlane for GrouterPlane {
    fn name(&self) -> &'static str {
        "GROUTER"
    }

    fn put(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        source: Destination,
        bytes: f64,
        consumers: u32,
    ) -> Result<PutOp, StoreError> {
        match source {
            Destination::Gpu(g) => {
                // Locality: keep the data on the producer's GPU. Without the
                // unified framework the store is placement-blind (random).
                let store_gpu = if self.cfg.unified_framework {
                    g
                } else {
                    GpuRef::new(
                        g.node,
                        self.rng.next_below(ctx.topo.gpus_per_node() as u64) as usize,
                    )
                };
                match self.alloc(ctx, store_gpu, bytes) {
                    Ok((alloc_lat, mut legs)) => {
                        if self.cfg.elastic_storage {
                            let idx = ctx.pool_index(store_gpu);
                            ctx.scalers[idx].on_output(token.function.0, bytes);
                        }
                        let (id, lookup) = ctx.store.put(
                            ctx.now,
                            token,
                            Location::Gpu(store_gpu),
                            bytes,
                            consumers,
                        );
                        if store_gpu != g {
                            // Relay copy (only without UF).
                            if self.cfg.topology_aware {
                                legs.push(self.ledger_intra_leg(
                                    ctx,
                                    g.node,
                                    g.gpu,
                                    store_gpu.gpu,
                                    bytes,
                                ));
                            } else {
                                let plan = plan_intra_node(
                                    ctx.topo,
                                    ctx.net,
                                    None,
                                    g.node,
                                    g.gpu,
                                    store_gpu.gpu,
                                    bytes,
                                    &self.cfg.intra_cfg(),
                                );
                                legs.push(OpLeg::new(plan, g.node));
                            }
                        }
                        Ok(PutOp {
                            id,
                            op: DataOp {
                                control_latency: lookup
                                    + alloc_lat
                                    + grouter_sim::params::IPC_MAP_CACHED,
                                legs,
                            },
                        })
                    }
                    Err(()) => {
                        // Oversized object: store in host memory.
                        let (id, lookup) =
                            ctx.store
                                .put(ctx.now, token, Location::Host(g.node), bytes, consumers);
                        let mut leg = OpLeg::new(
                            plan_d2h(
                                ctx.topo,
                                ctx.net,
                                g.node,
                                g.gpu,
                                bytes,
                                &self.cfg.host_cfg(),
                            ),
                            g.node,
                        );
                        self.apply_slo(ctx, &mut leg);
                        self.apply_pinned(ctx, &mut leg);
                        Ok(PutOp {
                            id,
                            op: DataOp {
                                control_latency: lookup,
                                legs: vec![leg],
                            },
                        })
                    }
                }
            }
            Destination::Host(n) => {
                let (id, lookup) =
                    ctx.store
                        .put(ctx.now, token, Location::Host(n), bytes, consumers);
                Ok(PutOp {
                    id,
                    op: DataOp::control_only(lookup),
                })
            }
        }
    }

    fn get(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        id: DataId,
        dest: Destination,
    ) -> Result<DataOp, StoreError> {
        let node = match dest {
            Destination::Gpu(g) => g.node,
            Destination::Host(n) => n,
        };
        let (entry, lookup) = ctx.store.resolve(ctx.now, node, token, id)?;
        let mut legs: Vec<OpLeg> = Vec::new();
        match (entry.location, dest) {
            (Location::Gpu(s), Destination::Gpu(d)) if s == d => {
                // Zero-copy address sharing (§4.2.2).
                return Ok(DataOp::control_only(
                    lookup + grouter_sim::params::IPC_MAP_CACHED,
                ));
            }
            (Location::Gpu(s), Destination::Gpu(d)) if s.node == d.node => {
                if self.cfg.topology_aware && ctx.topo.has_nvlink() {
                    legs.push(self.ledger_intra_leg(ctx, s.node, s.gpu, d.gpu, entry.bytes));
                } else {
                    let plan = plan_intra_node(
                        ctx.topo,
                        ctx.net,
                        None,
                        s.node,
                        s.gpu,
                        d.gpu,
                        entry.bytes,
                        &self.cfg.intra_cfg(),
                    );
                    legs.push(OpLeg::new(plan, s.node));
                }
            }
            (Location::Gpu(s), Destination::Gpu(d)) => {
                // Direct GDR, multi-NIC when harvesting (Fig. 9a).
                let mut leg = OpLeg::new(
                    plan_cross_node(ctx.topo, ctx.net, s, d, entry.bytes, &self.cfg.xnode_cfg()),
                    s.node,
                );
                if ctx.trace.on(grouter_obs::Comp::Plane) {
                    ctx.trace.instant(
                        grouter_obs::Comp::Plane,
                        "route_gpu",
                        grouter_obs::Ids::NONE,
                        vec![
                            ("src_node", s.node.into()),
                            ("src_gpu", s.gpu.into()),
                            ("dst_node", d.node.into()),
                            ("dst_gpu", d.gpu.into()),
                            ("paths", leg.plan.flows.len().into()),
                            ("bytes", entry.bytes.into()),
                        ],
                    );
                    ctx.trace
                        .count(grouter_obs::Comp::Plane, "route_gpu_selections", 1);
                }
                self.apply_slo(ctx, &mut leg);
                legs.push(leg);
            }
            (Location::Gpu(s), Destination::Host(n)) => {
                let mut leg = OpLeg::new(
                    plan_d2h(
                        ctx.topo,
                        ctx.net,
                        s.node,
                        s.gpu,
                        entry.bytes,
                        &self.cfg.host_cfg(),
                    ),
                    s.node,
                );
                self.apply_slo(ctx, &mut leg);
                self.apply_pinned(ctx, &mut leg);
                legs.push(leg);
                if s.node != n {
                    legs.push(OpLeg::new(
                        plan_host_to_host(ctx.topo, ctx.net, s.node, n, entry.bytes),
                        s.node,
                    ));
                }
            }
            (Location::Host(h), Destination::Gpu(d)) => {
                if h != d.node {
                    legs.push(OpLeg::new(
                        plan_host_to_host(ctx.topo, ctx.net, h, d.node, entry.bytes),
                        h,
                    ));
                }
                let mut leg = OpLeg::new(
                    plan_h2d(
                        ctx.topo,
                        ctx.net,
                        d.node,
                        d.gpu,
                        entry.bytes,
                        &self.cfg.host_cfg(),
                    ),
                    d.node,
                );
                self.apply_slo(ctx, &mut leg);
                self.apply_pinned(ctx, &mut leg);
                legs.push(leg);
            }
            (Location::Host(a), Destination::Host(b)) => {
                if a == b {
                    legs.push(OpLeg::new(plan_shm(ctx.topo, ctx.net, a, entry.bytes), a));
                } else {
                    legs.push(OpLeg::new(
                        plan_host_to_host(ctx.topo, ctx.net, a, b, entry.bytes),
                        a,
                    ));
                }
            }
        }
        Ok(DataOp {
            control_latency: lookup,
            legs,
        })
    }

    fn on_consumed(&mut self, ctx: &mut PlaneCtx<'_>, id: DataId) -> Vec<DataOp> {
        let entry = ctx.store.peek(id).cloned();
        let mut freed_gpu = None;
        if ctx.store.consumed(id) {
            let home = self.migrated_home.remove(&id.0);
            if let Some(entry) = entry {
                match entry.location {
                    Location::Gpu(g) => {
                        let idx = ctx.pool_index(g);
                        ctx.pools[idx].free(entry.bytes);
                        if self.cfg.elastic_storage {
                            ctx.scalers[idx].on_consumed(entry.producer.0);
                        }
                        freed_gpu = Some(g);
                    }
                    // A migrated object consumed straight from host memory:
                    // its pool bytes were freed at migration time, but the
                    // home GPU's pre-warm scaler still counts the output as
                    // live — without this release the leaked count inflates
                    // the concurrency p99 and the pool over-reserves forever.
                    Location::Host(_) => {
                        if self.cfg.elastic_storage {
                            if let Some(home) = home {
                                let idx = ctx.pool_index(home);
                                ctx.scalers[idx].on_consumed(entry.producer.0);
                            }
                        }
                    }
                }
            }
        }
        // Memory just freed: shrink toward target, then restore what fits.
        if let Some(g) = freed_gpu {
            self.resize_pool(ctx, g);
            return self.restores(ctx, g);
        }
        Vec::new()
    }

    fn on_memory_change(&mut self, ctx: &mut PlaneCtx<'_>, gpu: GpuRef) -> Vec<DataOp> {
        let idx = ctx.pool_index(gpu);
        let over = ctx.pools[idx].used() - ctx.pools[idx].storage_cap();
        if over > 0.0 {
            let legs = self.migrate(ctx, gpu, over);
            if legs.is_empty() {
                return Vec::new();
            }
            return vec![DataOp {
                control_latency: SimDuration::ZERO,
                legs,
            }];
        }
        self.restores(ctx, gpu)
    }

    fn stats(&self) -> PlaneStats {
        self.stats
    }

    fn on_request(&mut self, ctx: &mut PlaneCtx<'_>, stages: &[Destination]) {
        let mut seen = std::collections::BTreeSet::new();
        for dest in stages {
            if let Destination::Gpu(g) = dest {
                if seen.insert(*g) {
                    self.resize_pool(ctx, *g);
                }
            }
        }
    }
}
