//! GROUTER feature configuration.
//!
//! The four design components of §4 map to four switches, which is exactly
//! what the ablation study (Fig. 16) toggles:
//!
//! | switch | paper component | effect when off |
//! |---|---|---|
//! | `unified_framework` (UF) | §4.2 locality-aware Put/Get | objects land on a random GPU, like NVSHMEM+ |
//! | `bandwidth_harvesting` (BH) | §4.3.2 parallel PCIe/NIC + SLO rate control | single PCIe link / single NIC, no guarantees |
//! | `topology_aware` (TA) | §4.3.3 Algorithm 1 + route-GPU selection | direct paths only, naive route GPUs |
//! | `elastic_storage` (ES) | §4.4 pre-warm scaling + queue-aware migration | pool never shrinks, LRU eviction, no restore |

use grouter_transfer::plan::PlanConfig;

/// Feature switches for [`crate::GrouterPlane`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GrouterConfig {
    /// §4.2: locality-aware unified data-passing framework.
    pub unified_framework: bool,
    /// §4.3.2: fine-grained bandwidth harvesting + SLO rate control.
    pub bandwidth_harvesting: bool,
    /// §4.3.3: topology-aware transfer scheduling (Algorithm 1).
    pub topology_aware: bool,
    /// §4.4: elastic GPU data storage.
    pub elastic_storage: bool,
    /// §4.4.2: proactive restoration of migrated data. Disabling this while
    /// keeping `elastic_storage` gives the paper's "RQ" variant (queue-aware
    /// eviction only, Fig. 18).
    pub proactive_restore: bool,
    /// Fan-out bound for parallel transfers.
    pub max_paths: usize,
    /// NVLink detour bound for Algorithm 1.
    pub max_hops: usize,
}

impl Default for GrouterConfig {
    fn default() -> Self {
        Self::full()
    }
}

impl GrouterConfig {
    /// Everything on — the system the paper evaluates as "GROUTER".
    pub fn full() -> GrouterConfig {
        GrouterConfig {
            unified_framework: true,
            bandwidth_harvesting: true,
            topology_aware: true,
            elastic_storage: true,
            proactive_restore: true,
            max_paths: 4,
            max_hops: 3,
        }
    }

    /// Disable elastic storage (ablation step 1).
    pub fn no_es(mut self) -> GrouterConfig {
        self.elastic_storage = false;
        self.proactive_restore = false;
        self
    }

    /// Keep queue-aware eviction but disable proactive restoration — the
    /// paper's "RQ" comparison point (Fig. 18).
    pub fn no_restore(mut self) -> GrouterConfig {
        self.proactive_restore = false;
        self
    }

    /// Disable topology-aware scheduling (ablation step 2).
    pub fn no_ta(mut self) -> GrouterConfig {
        self.topology_aware = false;
        self
    }

    /// Disable bandwidth harvesting (ablation step 3).
    pub fn no_bh(mut self) -> GrouterConfig {
        self.bandwidth_harvesting = false;
        self
    }

    /// Disable the unified framework's locality (ablation step 4).
    pub fn no_uf(mut self) -> GrouterConfig {
        self.unified_framework = false;
        self
    }

    /// Planner config for gFn–host (PCIe) transfers.
    pub fn host_cfg(&self) -> PlanConfig {
        PlanConfig {
            parallel_pcie: self.bandwidth_harvesting,
            parallel_nics: false,
            parallel_nvlink: false,
            topology_aware: self.topology_aware,
            max_paths: self.max_paths,
            max_hops: self.max_hops,
        }
    }

    /// Planner config for cross-node gFn–gFn (NIC) transfers.
    pub fn xnode_cfg(&self) -> PlanConfig {
        PlanConfig {
            parallel_pcie: false,
            parallel_nics: self.bandwidth_harvesting,
            parallel_nvlink: false,
            topology_aware: self.topology_aware,
            max_paths: self.max_paths,
            max_hops: self.max_hops,
        }
    }

    /// Planner config for intra-node gFn–gFn (NVLink) transfers.
    pub fn intra_cfg(&self) -> PlanConfig {
        PlanConfig {
            parallel_pcie: false,
            parallel_nics: false,
            parallel_nvlink: self.topology_aware,
            topology_aware: self.topology_aware,
            max_paths: self.max_paths,
            max_hops: self.max_hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_enables_everything() {
        let c = GrouterConfig::full();
        assert!(c.unified_framework && c.bandwidth_harvesting);
        assert!(c.topology_aware && c.elastic_storage);
        assert!(c.host_cfg().parallel_pcie);
        assert!(c.xnode_cfg().parallel_nics);
        assert!(c.intra_cfg().parallel_nvlink);
    }

    #[test]
    fn ablation_chain_composes() {
        let c = GrouterConfig::full().no_es().no_ta().no_bh().no_uf();
        assert!(!c.elastic_storage && !c.topology_aware);
        assert!(!c.bandwidth_harvesting && !c.unified_framework);
        assert!(!c.host_cfg().parallel_pcie);
        assert!(!c.xnode_cfg().parallel_nics);
        assert!(!c.intra_cfg().parallel_nvlink);
    }

    #[test]
    fn ta_off_keeps_bh_parallel_pcie() {
        let c = GrouterConfig::full().no_ta();
        let h = c.host_cfg();
        assert!(h.parallel_pcie && !h.topology_aware);
        assert!(!c.intra_cfg().parallel_nvlink);
    }
}
