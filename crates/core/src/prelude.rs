//! Convenience imports for application code.
//!
//! ```
//! use grouter::prelude::*;
//!
//! let mut wf = WorkflowSpec::new("demo", 1e6);
//! wf.push(StageSpec::gpu("only", vec![], SimDuration::from_millis(5), 1e6, 1e9));
//! let mut rt = grouter_runtime_on(presets::dgx_v100(), 1, GrouterConfig::full());
//! rt.submit(std::sync::Arc::new(wf), SimTime::ZERO);
//! rt.run();
//! assert_eq!(rt.metrics().completed(), 1);
//! ```

pub use crate::{grouter_runtime_on, grouter_runtime_with, GrouterConfig, GrouterPlane};
pub use grouter_runtime::dataplane::{DataPlane, Destination};
pub use grouter_runtime::metrics::PassCategory;
pub use grouter_runtime::placement::PlacementPolicy;
pub use grouter_runtime::spec::{StageKind, StageSpec, WorkflowSpec};
pub use grouter_runtime::world::RuntimeConfig;
pub use grouter_runtime::Runtime;
pub use grouter_sim::time::{SimDuration, SimTime};
pub use grouter_topology::{presets, GpuRef, TopologyKind};
