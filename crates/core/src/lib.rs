//! # GROUTER — a GPU-centric data plane for serverless inference workflows
//!
//! Rust reproduction of *"Efficient Data Passing for Serverless Inference
//! Workflows: A GPU-Centric Approach"* (EuroSys '26). The paper's testbeds
//! (DGX-V100/A100, 4×A10, 8×H800) are replaced by a deterministic
//! flow-level cluster simulator (see `DESIGN.md`); everything above the
//! hardware — the unified Put/Get framework, bandwidth harvesting,
//! Algorithm 1 topology-aware scheduling, and elastic GPU storage — is
//! implemented faithfully.
//!
//! ## Crate map
//!
//! * [`GrouterPlane`] / [`GrouterConfig`] — the contribution: the data
//!   plane with its four components and their ablation switches.
//! * [`runtime`] (re-export) — the serverless platform substrate.
//! * [`topology`], [`sim`], [`mem`], [`transfer`], [`store`] — the
//!   subsystems, re-exported for convenience.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use grouter::{grouter_runtime_on, GrouterConfig};
//! use grouter::runtime::spec::{StageSpec, WorkflowSpec};
//! use grouter::sim::time::{SimDuration, SimTime};
//! use grouter::topology::presets;
//!
//! // A two-stage GPU workflow on one DGX-V100 node.
//! let mut wf = WorkflowSpec::new("demo", 4e6);
//! let det = wf.push(StageSpec::gpu(
//!     "detect", vec![], SimDuration::from_millis(20), 16e6, 1e9,
//! ));
//! wf.push(StageSpec::gpu(
//!     "classify", vec![det], SimDuration::from_millis(10), 1e6, 1e9,
//! ));
//!
//! let mut rt = grouter_runtime_on(presets::dgx_v100(), 1, GrouterConfig::full());
//! rt.submit(Arc::new(wf), SimTime::ZERO);
//! rt.run();
//!
//! let metrics = rt.metrics();
//! assert_eq!(metrics.completed(), 1);
//! // GROUTER keeps data passing well below compute for this workflow.
//! let rec = &metrics.records()[0];
//! assert!(rec.passing_total() < rec.compute);
//! ```

pub mod config;
pub mod plane;
pub mod prelude;

pub use config::GrouterConfig;
pub use plane::GrouterPlane;

// Re-export the subsystem crates under stable names so downstream users
// depend on `grouter` alone.
pub use grouter_mem as mem;
pub use grouter_runtime as runtime;
pub use grouter_sim as sim;
pub use grouter_store as store;
pub use grouter_topology as topology;
pub use grouter_transfer as transfer;

use grouter_runtime::world::RuntimeConfig;
use grouter_runtime::Runtime;
use grouter_topology::graph::TopologySpec;

/// Build a [`Runtime`] with a GROUTER data plane on `num_nodes` copies of
/// `spec`, using default platform settings (MAPA placement, pre-warming,
/// elastic pools).
pub fn grouter_runtime_on(spec: TopologySpec, num_nodes: usize, cfg: GrouterConfig) -> Runtime {
    Runtime::new(
        spec,
        num_nodes,
        Box::new(GrouterPlane::new(cfg)),
        RuntimeConfig::default(),
    )
}

/// Same as [`grouter_runtime_on`] with explicit platform configuration.
pub fn grouter_runtime_with(
    spec: TopologySpec,
    num_nodes: usize,
    cfg: GrouterConfig,
    runtime_cfg: RuntimeConfig,
) -> Runtime {
    Runtime::new(
        spec,
        num_nodes,
        Box::new(GrouterPlane::new(cfg)),
        runtime_cfg,
    )
}
