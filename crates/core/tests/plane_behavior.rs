//! Behavioural tests: GROUTER vs the baselines on identical workloads.
//!
//! These encode the paper's *qualitative* claims at test granularity; the
//! quantitative sweeps live in `grouter-bench`.

use std::sync::Arc;

use grouter::runtime::dataplane::{DataPlane, Destination};
use grouter::runtime::metrics::PassCategory;
use grouter::runtime::placement::PlacementPolicy;
use grouter::runtime::spec::{StageSpec, WorkflowSpec};
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::time::{SimDuration, SimTime};
use grouter::topology::{presets, GpuRef};
use grouter::{GrouterConfig, GrouterPlane};
use grouter_baselines::{InflessPlane, NvshmemPlane};

const MB: f64 = 1e6;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Two GPU stages exchanging `bytes` on the weakly connected pair (0, 1).
fn hop_workflow(bytes: f64) -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("hop", 1.0 * MB);
    let a = wf.push(StageSpec::gpu("a", vec![], ms(5), bytes, 1e9));
    wf.push(StageSpec::gpu("b", vec![a], ms(5), 1.0 * MB, 1e9));
    Arc::new(wf)
}

fn run_pinned(plane: Box<dyn DataPlane>, spec: Arc<WorkflowSpec>, gpus: Vec<usize>) -> Runtime {
    let pin = PlacementPolicy::Pinned(
        gpus.into_iter()
            .map(|g| Destination::Gpu(GpuRef::new(0, g)))
            .collect(),
    );
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0],
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 1, plane, cfg);
    rt.submit(spec, SimTime::ZERO);
    rt.run();
    rt
}

fn gfn_gfn_ms(rt: &Runtime) -> f64 {
    rt.metrics().records()[0]
        .passing_of(PassCategory::GpuGpu)
        .as_millis_f64()
}

fn gfn_host_ms(rt: &Runtime) -> f64 {
    rt.metrics().records()[0]
        .passing_of(PassCategory::GpuHost)
        .as_millis_f64()
}

#[test]
fn grouter_intra_node_beats_host_centric_and_nvshmem() {
    let bytes = 240.0 * MB;
    let grouter = run_pinned(
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        hop_workflow(bytes),
        vec![0, 1],
    );
    let infless = run_pinned(
        Box::new(InflessPlane::new()),
        hop_workflow(bytes),
        vec![0, 1],
    );
    let nvshmem = run_pinned(
        Box::new(NvshmemPlane::new(5)),
        hop_workflow(bytes),
        vec![0, 1],
    );
    let g = gfn_gfn_ms(&grouter);
    // Attribution is by logical edge: INFless+'s detour through host memory
    // still counts as the gFn–gFn hop, exactly like the paper's Fig. 3.
    let i = gfn_gfn_ms(&infless);
    let n = gfn_gfn_ms(&nvshmem);
    // Paper Fig. 13a: −95 % vs INFless+, −75 % vs NVSHMEM+.
    assert!(g < 0.15 * i, "GROUTER {g} ms vs INFless+ {i} ms");
    assert!(g < 0.55 * n, "GROUTER {g} ms vs NVSHMEM+ {n} ms");
}

#[test]
fn parallel_nvlink_beats_single_path_on_weak_pairs() {
    let bytes = 480.0 * MB;
    let full = run_pinned(
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        hop_workflow(bytes),
        vec![0, 1], // single 24 GB/s link pair
    );
    let no_ta = run_pinned(
        Box::new(GrouterPlane::new(GrouterConfig::full().no_ta())),
        hop_workflow(bytes),
        vec![0, 1],
    );
    let f = gfn_gfn_ms(&full);
    let s = gfn_gfn_ms(&no_ta);
    assert!(
        f < 0.7 * s,
        "parallel NVLink {f} ms should clearly beat single path {s} ms"
    );
}

#[test]
fn bandwidth_harvesting_accelerates_egress() {
    // A single GPU stage with a large output: the response egress is a
    // gFn-host transfer.
    let mut wf = WorkflowSpec::new("egress", 1.0 * MB);
    wf.push(StageSpec::gpu("a", vec![], ms(5), 480.0 * MB, 1e9));
    let spec = Arc::new(wf);
    let full = run_pinned(
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        spec.clone(),
        vec![0],
    );
    let no_bh = run_pinned(
        Box::new(GrouterPlane::new(GrouterConfig::full().no_bh())),
        spec,
        vec![0],
    );
    let f = gfn_host_ms(&full);
    let s = gfn_host_ms(&no_bh);
    // 4 PCIe chains vs 1 — paper claims 2–4×.
    assert!(f < 0.45 * s, "harvested {f} ms vs single-link {s} ms");
}

#[test]
fn zero_copy_when_colocated() {
    let rt = run_pinned(
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        hop_workflow(480.0 * MB),
        vec![3, 3],
    );
    let g = gfn_gfn_ms(&rt);
    // First put pays one millisecond-level cudaMalloc to grow the cold pool
    // (§4.4.1); no bytes move. A 480 MB copy would take ≥ 10 ms even over
    // a double NVLink.
    assert!(g < 2.0, "co-located hop should be zero-copy, got {g} ms");
}

#[test]
fn ablation_degrades_monotonically_in_aggregate() {
    // Cumulative ablation as in Fig. 16; full GROUTER must beat the fully
    // ablated variant by a clear margin on data-passing latency.
    let bytes = 240.0 * MB;
    let configs = [
        GrouterConfig::full(),
        GrouterConfig::full().no_es(),
        GrouterConfig::full().no_es().no_ta(),
        GrouterConfig::full().no_es().no_ta().no_bh(),
        GrouterConfig::full().no_es().no_ta().no_bh().no_uf(),
    ];
    let mut passing: Vec<f64> = Vec::new();
    for cfg in configs {
        let rt = run_pinned(
            Box::new(GrouterPlane::new(cfg)),
            hop_workflow(bytes),
            vec![0, 1],
        );
        let rec = &rt.metrics().records()[0];
        passing.push(rec.passing_total().as_millis_f64());
    }
    let full = passing[0];
    let none = passing[4];
    assert!(
        none > 1.3 * full,
        "fully ablated {none} ms should be ≥1.3× full {full} ms (got {passing:?})"
    );
    // Each later ablation is never better than full GROUTER.
    for (i, p) in passing.iter().enumerate() {
        assert!(
            *p >= full * 0.99,
            "config {i} beat full GROUTER: {passing:?}"
        );
    }
}

#[test]
fn elastic_pool_shrinks_after_burst_static_does_not() {
    use grouter::mem::PoolDiscipline;
    // Heavy burst of puts, then idle: elastic storage reclaims.
    let mut wf = WorkflowSpec::new("burst", 1.0 * MB);
    wf.push(StageSpec::gpu("a", vec![], ms(2), 400.0 * MB, 1e9));
    let spec = Arc::new(wf);

    let run = |discipline| {
        let pin = PlacementPolicy::Pinned(vec![Destination::Gpu(GpuRef::new(0, 0))]);
        let cfg = RuntimeConfig {
            placement: pin,
            placement_nodes: vec![0],
            pool_discipline: discipline,
            ..Default::default()
        };
        let mut rt = Runtime::new(
            presets::dgx_v100(),
            1,
            Box::new(GrouterPlane::new(GrouterConfig::full())),
            cfg,
        );
        for i in 0..10 {
            rt.submit(spec.clone(), SimTime(i * 20_000_000));
        }
        rt.run();
        rt
    };

    let elastic = run(PoolDiscipline::Elastic);
    let static_ = run(PoolDiscipline::Static { bytes: 6e9 });
    let e_reserved = elastic.world().pools[0].reserved();
    let s_reserved = static_.world().pools[0].reserved();
    assert!(
        e_reserved < 2e9,
        "elastic pool still holds {e_reserved} after the burst"
    );
    assert!(
        (s_reserved - 6e9).abs() < 1.0,
        "static pool must keep its reservation, got {s_reserved}"
    );
}

#[test]
fn queue_aware_migration_protects_imminent_data() {
    use grouter::mem::{EvictionPolicy, GrouterPolicy, LruPolicy, ObjectMeta};
    // Direct policy-level check of the Fig. 11b scenario, then the
    // plane-level wiring: ES on uses queue-aware victims.
    let objects = vec![
        ObjectMeta {
            key: 1,
            bytes: 100.0,
            last_access: SimTime(10),
            next_use: Some(0),
        },
        ObjectMeta {
            key: 2,
            bytes: 100.0,
            last_access: SimTime(20),
            next_use: Some(5),
        },
    ];
    assert_eq!(LruPolicy.select_victims(&objects, 100.0), vec![1]);
    assert_eq!(GrouterPolicy.select_victims(&objects, 100.0), vec![2]);
}

#[test]
fn access_control_blocks_cross_workflow_reads() {
    // Build a tiny world manually to call the plane directly.
    use grouter::mem::{ElasticPool, PinnedRing, PoolDiscipline, PrewarmScaler};
    use grouter::runtime::dataplane::PlaneCtx;
    use grouter::sim::FlowNet;
    use grouter::store::{AccessToken, DataStore, FunctionId, WorkflowId};
    use grouter::topology::{PathLedger, Topology};
    use grouter::transfer::rate::RateController;

    let mut net = FlowNet::new();
    let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
    let mut store = DataStore::new(1);
    let mut pools: Vec<ElasticPool> = (0..8)
        .map(|_| ElasticPool::new(PoolDiscipline::Elastic, topo.gpu_mem_bytes()))
        .collect();
    let mut scalers: Vec<PrewarmScaler> = (0..8).map(|_| PrewarmScaler::new()).collect();
    let mut ledgers = vec![PathLedger::from_topology(&topo)];
    let mut pinned = vec![PinnedRing::new(grouter::sim::params::PINNED_RING_BYTES)];
    let mut rates = vec![RateController::new()];
    let mut plane = GrouterPlane::new(GrouterConfig::full());

    let mut ctx = PlaneCtx {
        topo: &topo,
        net: &net,
        store: &mut store,
        pools: &mut pools,
        scalers: &mut scalers,
        ledgers: &mut ledgers,
        pinned: &mut pinned,
        rates: &mut rates,
        now: SimTime::ZERO,
        slo: None,
        trace: grouter_obs::Recorder::disabled(),
    };
    let owner = AccessToken {
        function: FunctionId(1),
        workflow: WorkflowId(7),
    };
    let put = plane
        .put(&mut ctx, owner, Destination::Gpu(GpuRef::new(0, 0)), 1e6, 1)
        .expect("put");
    let intruder = AccessToken {
        function: FunctionId(2),
        workflow: WorkflowId(8),
    };
    let err = plane
        .get(
            &mut ctx,
            intruder,
            put.id,
            Destination::Gpu(GpuRef::new(0, 1)),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        grouter::store::StoreError::AccessDenied { .. }
    ));
    // The rightful owner still reads it.
    let ok = plane.get(&mut ctx, owner, put.id, Destination::Gpu(GpuRef::new(0, 1)));
    assert!(ok.is_ok());
}

#[test]
fn consuming_a_migrated_object_releases_its_scaler_reservation() {
    // Regression test: an output produced on a GPU, migrated to host under
    // memory pressure and then consumed from there used to keep its
    // live-output count on the home GPU's pre-warm scaler forever,
    // ratcheting the concurrency p99 and the pool target upward.
    use grouter::mem::{ElasticPool, PinnedRing, PoolDiscipline, PrewarmScaler};
    use grouter::runtime::dataplane::PlaneCtx;
    use grouter::sim::FlowNet;
    use grouter::store::{AccessToken, DataStore, FunctionId, Location, WorkflowId};
    use grouter::topology::{PathLedger, Topology};
    use grouter::transfer::rate::RateController;

    let mut net = FlowNet::new();
    let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
    let mut store = DataStore::new(1);
    let mut pools: Vec<ElasticPool> = (0..8)
        .map(|_| ElasticPool::new(PoolDiscipline::Elastic, topo.gpu_mem_bytes()))
        .collect();
    let mut scalers: Vec<PrewarmScaler> = (0..8).map(|_| PrewarmScaler::new()).collect();
    let mut ledgers = vec![PathLedger::from_topology(&topo)];
    let mut pinned = vec![PinnedRing::new(grouter::sim::params::PINNED_RING_BYTES)];
    let mut rates = vec![RateController::new()];
    let mut plane = GrouterPlane::new(GrouterConfig::full());

    let mut ctx = PlaneCtx {
        topo: &topo,
        net: &net,
        store: &mut store,
        pools: &mut pools,
        scalers: &mut scalers,
        ledgers: &mut ledgers,
        pinned: &mut pinned,
        rates: &mut rates,
        now: SimTime::ZERO,
        slo: None,
        trace: grouter_obs::Recorder::disabled(),
    };
    let producer = AccessToken {
        function: FunctionId(1),
        workflow: WorkflowId(7),
    };
    let gpu = GpuRef::new(0, 0);
    let put = plane
        .put(&mut ctx, producer, Destination::Gpu(gpu), 400.0 * MB, 1)
        .expect("put");
    assert_eq!(ctx.scalers[0].live_outputs(1), 1);

    // Squeeze the GPU so the stored object must migrate to host memory.
    let capacity = ctx.pools[0].capacity();
    ctx.pools[0].set_runtime_used(capacity - 100.0 * MB);
    plane.on_memory_change(&mut ctx, gpu);
    assert!(
        matches!(ctx.store.peek(put.id).unwrap().location, Location::Host(_)),
        "object should have migrated to host under pressure"
    );

    // The sole consumer reads it from the host: the home GPU's scaler must
    // release the live-output reservation even though the object no longer
    // occupies its pool.
    plane.on_consumed(&mut ctx, put.id);
    assert_eq!(
        scalers[0].live_outputs(1),
        0,
        "consuming a migrated object leaked its live-output count"
    );
}

#[test]
fn concurrent_transfers_trigger_live_rebalancing_and_release_cleanly() {
    // Stage s0 (GPU0) feeds s1 (GPU1) with a large object whose Algorithm 1
    // selection occupies the direct (0,3) edge as part of an indirect
    // route; s2 (GPU0, serialised after s0) then feeds s3 (GPU3), forcing a
    // direct-path rebalance of s1's in-flight flow.
    let mut wf = WorkflowSpec::new("rebalance", 1.0 * MB);
    let a = wf.push(StageSpec::gpu("a", vec![], ms(1), 600.0 * MB, 1e9));
    wf.push(StageSpec::gpu("b", vec![a], ms(1), 1.0 * MB, 1e9));
    let c = wf.push(StageSpec::gpu("c", vec![], ms(2), 600.0 * MB, 1e9));
    wf.push(StageSpec::gpu("d", vec![c], ms(1), 1.0 * MB, 1e9));
    let pin = PlacementPolicy::Pinned(vec![
        Destination::Gpu(GpuRef::new(0, 0)),
        Destination::Gpu(GpuRef::new(0, 1)),
        Destination::Gpu(GpuRef::new(0, 0)),
        Destination::Gpu(GpuRef::new(0, 3)),
    ]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0],
        ..Default::default()
    };
    // Three paths leave the (0,4) links free as rebalance headroom; with
    // all four taken there is no alternative route to move the occupant to.
    let plane_cfg = GrouterConfig {
        max_paths: 3,
        ..GrouterConfig::full()
    };
    let mut rt = Runtime::new(
        presets::dgx_v100(),
        1,
        Box::new(GrouterPlane::new(plane_cfg)),
        cfg,
    );
    rt.submit(Arc::new(wf), SimTime::ZERO);
    rt.run();
    assert_eq!(rt.metrics().completed(), 1);
    assert!(rt.world().quiescent());
    // A live flow really was re-pathed.
    assert!(
        rt.world().rebalances_applied > 0,
        "expected at least one live rebalance"
    );
    // The hygiene invariant: every reservation released, every edge idle,
    // no dangling flow-index entries — even after live rebalancing.
    assert!(rt.world().ledgers_idle(), "NVLink bandwidth leaked");
}

#[test]
fn ledgers_idle_after_heavy_concurrent_load() {
    let spec = hop_workflow(120.0 * MB);
    let mut rt = {
        let cfg = RuntimeConfig {
            placement: PlacementPolicy::Mapa,
            placement_nodes: vec![0],
            ..Default::default()
        };
        Runtime::new(
            presets::dgx_v100(),
            1,
            Box::new(GrouterPlane::new(GrouterConfig::full())),
            cfg,
        )
    };
    for i in 0..40 {
        rt.submit(spec.clone(), SimTime(i * 3_000_000));
    }
    rt.run();
    assert_eq!(rt.metrics().completed(), 40);
    assert!(rt.world().ledgers_idle(), "NVLink bandwidth leaked");
}
