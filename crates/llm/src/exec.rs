//! Analytic execution of data-plane operations.
//!
//! The full executor (`grouter_runtime::exec`) runs every leg as live
//! flows through the max-min [`grouter_sim::FlowNet`]. A serving group
//! instead executes operations *analytically*: each leg takes
//! `setup + max over flows of bytes / bottleneck-capacity`, i.e. every
//! flow gets its path's full hardware bandwidth (the dedicated-bandwidth
//! approximation — DESIGN.md §5.10 discusses the gap). What is **not**
//! approximated is the resource contract: every leg's rate token, ledger
//! reservation, pinned-ring bytes and NVLink path reservations are
//! released exactly as `release_leg_resources` would, or the group's
//! ledgers would leak reservations and later operations would starve.

use grouter_mem::PinnedRing;
use grouter_runtime::dataplane::{DataOp, OpLeg};
use grouter_sim::time::SimDuration;
use grouter_sim::FlowNet;
use grouter_topology::PathLedger;
use grouter_transfer::rate::RateController;

/// Duration of one leg at dedicated hardware bandwidth.
fn leg_duration(leg: &OpLeg, net: &FlowNet) -> SimDuration {
    let mut slowest = 0.0f64;
    for flow in &leg.plan.flows {
        let cap = flow
            .links
            .iter()
            .map(|&l| net.link_capacity(l))
            .fold(f64::INFINITY, f64::min);
        if cap.is_finite() && cap > 0.0 {
            slowest = slowest.max(flow.bytes / cap);
        }
    }
    leg.plan.setup + SimDuration::from_secs_f64(slowest)
}

/// Release everything a completed leg held — the analytic mirror of the
/// full executor's `release_leg_resources`, plus the NVLink path
/// reservations the flow teardown path would return.
fn release_leg(
    leg: &OpLeg,
    ledgers: &mut [PathLedger],
    pinned: &mut [PinnedRing],
    rates: &mut [RateController],
) {
    if let Some((node, token)) = leg.rate_token {
        rates[node].finish(token);
    }
    if let Some((node, res)) = leg.ledger_release {
        ledgers[node].release(res);
    }
    if let Some((node, bytes)) = leg.pinned_release {
        pinned[node].release(bytes);
    }
    for flow in &leg.plan.flows {
        if let Some((route, rate)) = &flow.nv_reservation {
            ledgers[leg.nv_node].bwm_mut().release_path(route, *rate);
        }
    }
}

/// Execute one operation: control latency plus its legs run strictly in
/// order, with every leg's resources released on completion. Returns the
/// operation's total duration.
pub fn run_op(
    op: &DataOp,
    net: &FlowNet,
    ledgers: &mut [PathLedger],
    pinned: &mut [PinnedRing],
    rates: &mut [RateController],
) -> SimDuration {
    let mut total = op.control_latency;
    for leg in &op.legs {
        total = total + leg_duration(leg, net);
        release_leg(leg, ledgers, pinned, rates);
    }
    total
}

/// Execute a batch of background operations (migrations, proactive
/// restores); returns the sum of their durations.
pub fn run_ops(
    ops: &[DataOp],
    net: &FlowNet,
    ledgers: &mut [PathLedger],
    pinned: &mut [PinnedRing],
    rates: &mut [RateController],
) -> SimDuration {
    let mut total = SimDuration::ZERO;
    for op in ops {
        total = total + run_op(op, net, ledgers, pinned, rates);
    }
    total
}
