//! TTFT/TBT accounting and the deterministic run report.

use grouter_sim::stats::Summary;

/// Per-group serving metrics, merged across groups at the end of a run.
#[derive(Debug, Default)]
pub struct LlmMetrics {
    /// Time-to-first-token per completed request, seconds.
    pub ttft: Summary,
    /// Mean time-between-tokens per completed request, seconds (requests
    /// emitting at least two tokens).
    pub tbt: Summary,
    pub admitted: u64,
    pub completed: u64,
    pub failed: u64,
    /// Tokens emitted across all streams.
    pub tokens: u64,
    /// KV touches that had to fetch a non-resident block (remote relay or
    /// host restore) and stalled the stream.
    pub restore_stalls: u64,
    /// Lineage re-materializations after a decode-GPU failure.
    pub rematerialized: u64,
}

impl LlmMetrics {
    /// Fold `other` into `self` (groups merged in fixed group order, so the
    /// merged sample sequence is deterministic).
    pub fn merge(&mut self, other: &LlmMetrics) {
        for &s in other.ttft.samples() {
            self.ttft.record(s);
        }
        for &s in other.tbt.samples() {
            self.tbt.record(s);
        }
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.failed += other.failed;
        self.tokens += other.tokens;
        self.restore_stalls += other.restore_stalls;
        self.rematerialized += other.rematerialized;
    }
}

/// FNV-1a over a byte string — the digest the CLI prints and CI compares
/// across worker-thread counts.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_samples_and_counters() {
        let mut a = LlmMetrics::default();
        a.ttft.record(0.1);
        a.completed = 1;
        let mut b = LlmMetrics::default();
        b.ttft.record(0.2);
        b.tbt.record(0.01);
        b.completed = 2;
        b.tokens = 64;
        a.merge(&b);
        assert_eq!(a.ttft.len(), 2);
        assert_eq!(a.tbt.len(), 1);
        assert_eq!(a.completed, 3);
        assert_eq!(a.tokens, 64);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }
}
