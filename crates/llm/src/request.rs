//! Request identity and per-request serving state.

use grouter_runtime::TokenStream;
use grouter_sim::time::SimTime;
use grouter_topology::GpuRef;
use grouter_workloads::llm::LlmRequestSpec;

/// Why a request left the system without completing its stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailReason {
    /// No healthy decode GPU remained in the group.
    NoDecodeGpu,
    /// The decode GPU failed mid-stream and the one lineage
    /// re-materialization was already spent.
    LineageExhausted,
}

/// One admitted request inside a serving group.
#[derive(Clone, Debug)]
pub struct ActiveRequest {
    pub spec: LlmRequestSpec,
    pub arrival: SimTime,
    /// Token-stream progress (TTFT/TBT observation points).
    pub stream: TokenStream,
    /// Tokens covered by the KV produced at the last (re-)prefill: the
    /// prompt, plus any tokens generated before a decode-GPU failure forced
    /// a lineage re-materialization.
    pub kv_tokens: u32,
    /// Decode GPU the request is pinned to once handoff completes.
    pub decode_gpu: Option<GpuRef>,
    /// The request may not emit a token before this instant (first-token
    /// latency after handoff, or a KV restore stall).
    pub ready_at: SimTime,
    /// Whether the one allowed lineage re-materialization was used.
    pub retried: bool,
}

impl ActiveRequest {
    pub fn new(spec: LlmRequestSpec, arrival: SimTime) -> ActiveRequest {
        ActiveRequest {
            spec,
            arrival,
            stream: TokenStream::new(arrival, spec.output_tokens),
            kv_tokens: spec.prompt_tokens,
            decode_gpu: None,
            ready_at: arrival,
            retried: false,
        }
    }
}
