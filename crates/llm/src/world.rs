//! The sharded serving world: one router shard plus one shard per group.
//!
//! Shard 0 runs the router (open-loop arrivals, heartbeat views,
//! decode-aware admission); shards `1..=G` each run one serving group
//! ([`crate::group::GroupState`]). Shards talk only through typed
//! envelopes with the engine's conservative lookahead, so a run is
//! byte-identical at any worker-thread count.

use std::collections::VecDeque;

use grouter_ctl::{pick_group, DecodeBudget, DecodeView};
use grouter_sim::rng::DetRng;
use grouter_sim::time::{SimDuration, SimTime};
use grouter_sim::{Envelope, EventWorld, Scheduler, ShardWorld};
use grouter_workloads::llm::{LlmMix, LlmRequestSpec};
use grouter_workloads::OpenLoopGen;

use crate::group::{Actions, GroupEv, GroupOut, GroupState};

/// Typed events of one shard.
#[derive(Debug)]
pub enum Ev {
    /// Router: the next open-loop arrival fires.
    Arrival,
    /// Group: an internal serving event.
    Group(GroupEv),
    /// Delivery of a router→group admission envelope.
    MsgAdmit {
        rid: u64,
        spec: LlmRequestSpec,
        arrival: SimTime,
    },
    /// Delivery of a group→router heartbeat view.
    MsgView { group: usize, view: DecodeView },
    /// Delivery of a group→router request completion.
    MsgDone { rid: u64, ok: bool },
}

/// Cross-shard messages.
#[derive(Clone, Copy, Debug)]
pub enum Msg {
    Admit {
        rid: u64,
        spec: LlmRequestSpec,
        arrival: SimTime,
    },
    View {
        group: usize,
        view: DecodeView,
    },
    Done {
        rid: u64,
        ok: bool,
    },
}

/// Router-side state (shard 0).
pub struct RouterState {
    pub gen: OpenLoopGen,
    /// Arrivals still to schedule (including the one in flight).
    pub remaining: u64,
    pub mix: LlmMix,
    pub rng: DetRng,
    pub next_rid: u64,
    /// Deferred requests, FIFO.
    pub pending: VecDeque<(u64, LlmRequestSpec, SimTime)>,
    /// Last heartbeat view per group.
    pub views: Vec<DecodeView>,
    pub budget: DecodeBudget,
    pub completed: u64,
    pub failed: u64,
}

impl RouterState {
    pub fn new(
        gen: OpenLoopGen,
        requests: u64,
        mix: LlmMix,
        rng: DetRng,
        groups: usize,
        budget: DecodeBudget,
    ) -> RouterState {
        RouterState {
            gen,
            remaining: requests,
            mix,
            rng,
            next_rid: 0,
            pending: VecDeque::new(),
            views: vec![
                DecodeView {
                    active: 0,
                    kv_bytes: 0.0,
                    queued: 0,
                };
                groups
            ],
            budget,
            completed: 0,
            failed: 0,
        }
    }
}

/// What a shard is.
pub enum Role {
    Router(Box<RouterState>),
    Group(Box<GroupState>),
}

/// One shard of the LLM serving simulation.
pub struct LlmWorld {
    pub shard: u32,
    pub lookahead: SimDuration,
    pub role: Role,
    outbox: Vec<Envelope<Msg>>,
    seq: u64,
}

impl LlmWorld {
    pub fn router(state: RouterState, lookahead: SimDuration) -> LlmWorld {
        LlmWorld {
            shard: 0,
            lookahead,
            role: Role::Router(Box::new(state)),
            outbox: Vec::new(),
            seq: 0,
        }
    }

    pub fn group(index: usize, state: GroupState, lookahead: SimDuration) -> LlmWorld {
        LlmWorld {
            shard: index as u32 + 1,
            lookahead,
            role: Role::Group(Box::new(state)),
            outbox: Vec::new(),
            seq: 0,
        }
    }

    /// The group state, when this shard is a group.
    pub fn group_state(&self) -> Option<&GroupState> {
        match &self.role {
            Role::Group(g) => Some(g),
            Role::Router(_) => None,
        }
    }

    pub fn router_state(&self) -> Option<&RouterState> {
        match &self.role {
            Role::Router(r) => Some(r.as_ref()),
            Role::Group(_) => None,
        }
    }

    fn send(&mut self, now: SimTime, dst: u32, msg: Msg) {
        self.seq += 1;
        self.outbox.push(Envelope {
            at: now + self.lookahead,
            src: self.shard,
            dst,
            seq: self.seq,
            msg,
        });
    }

    /// Apply a group's side effects: local schedules plus envelopes to the
    /// router.
    fn apply_actions(&mut self, sched: &mut Scheduler<Self>, now: SimTime, acts: Actions) {
        let group = self.shard as usize - 1;
        for (at, ev) in acts.schedule {
            sched.schedule_at(at, Ev::Group(ev));
        }
        for out in acts.send {
            let msg = match out {
                GroupOut::View(view) => Msg::View { group, view },
                GroupOut::Done { rid, ok } => Msg::Done { rid, ok },
            };
            self.send(now, 0, msg);
        }
    }

    // ------------------------------------------------------------------
    // Router
    // ------------------------------------------------------------------

    /// Route one request: admit to the best group or park it as pending.
    fn route(&mut self, now: SimTime, rid: u64, spec: LlmRequestSpec, arrival: SimTime) {
        let picked = {
            let Role::Router(r) = &mut self.role else {
                return;
            };
            let kv_need = spec.model.kv_bytes(spec.prompt_tokens + spec.output_tokens);
            match pick_group(&r.views, r.budget, kv_need) {
                Some(g) => {
                    // Optimistic view update so a burst between heartbeats
                    // does not dogpile one group.
                    r.views[g].queued += 1;
                    r.views[g].kv_bytes += kv_need;
                    Some(g)
                }
                None => {
                    r.pending.push_back((rid, spec, arrival));
                    None
                }
            }
        };
        if let Some(g) = picked {
            self.send(now, g as u32 + 1, Msg::Admit { rid, spec, arrival });
        }
    }

    /// Retry deferred requests after any view refresh.
    fn drain_pending(&mut self, now: SimTime) {
        loop {
            let Role::Router(r) = &mut self.role else {
                return;
            };
            let Some((rid, spec, arrival)) = r.pending.pop_front() else {
                return;
            };
            let kv_need = spec.model.kv_bytes(spec.prompt_tokens + spec.output_tokens);
            if pick_group(&r.views, r.budget, kv_need).is_none() {
                r.pending.push_front((rid, spec, arrival));
                return;
            }
            self.route(now, rid, spec, arrival);
        }
    }

    fn on_arrival(&mut self, sched: &mut Scheduler<Self>) {
        let now = sched.now();
        let Role::Router(r) = &mut self.role else {
            return;
        };
        if r.remaining == 0 {
            return;
        }
        r.remaining -= 1;
        let rid = r.next_rid;
        r.next_rid += 1;
        let spec = r.mix.sample(&mut r.rng);
        if r.remaining > 0 {
            if let Some(next) = r.gen.next() {
                sched.schedule_at(next, Ev::Arrival);
            } else {
                r.remaining = 0;
            }
        }
        self.route(now, rid, spec, now);
    }
}

impl EventWorld for LlmWorld {
    type Event = Ev;

    fn dispatch(&mut self, sched: &mut Scheduler<Self>, ev: Ev) {
        let now = sched.now();
        match ev {
            Ev::Arrival => self.on_arrival(sched),
            Ev::Group(gev) => {
                let Role::Group(g) = &mut self.role else {
                    return;
                };
                let mut acts = Actions::default();
                match gev {
                    GroupEv::PrefillDone { rid } => g.prefill_done(now, rid, &mut acts),
                    GroupEv::HandoffDone { rid } => g.handoff_done(now, rid, &mut acts),
                    GroupEv::DecodeTick { gpu } => g.decode_tick(now, gpu, &mut acts),
                    GroupEv::Beat => g.beat(now, &mut acts),
                    GroupEv::Fail { gpu } => g.fail_gpu(now, gpu, &mut acts),
                }
                self.apply_actions(sched, now, acts);
            }
            Ev::MsgAdmit { rid, spec, arrival } => {
                let Role::Group(g) = &mut self.role else {
                    return;
                };
                let mut acts = Actions::default();
                g.admit(now, rid, spec, arrival, &mut acts);
                self.apply_actions(sched, now, acts);
            }
            Ev::MsgView { group, view } => {
                if let Role::Router(r) = &mut self.role {
                    if group < r.views.len() {
                        r.views[group] = view;
                    }
                }
                self.drain_pending(now);
            }
            Ev::MsgDone { rid: _, ok } => {
                if let Role::Router(r) = &mut self.role {
                    if ok {
                        r.completed += 1;
                    } else {
                        r.failed += 1;
                    }
                }
                self.drain_pending(now);
            }
        }
    }
}

impl ShardWorld for LlmWorld {
    type Msg = Msg;

    fn drain_outbox(&mut self, sink: &mut Vec<Envelope<Msg>>) {
        sink.append(&mut self.outbox);
    }

    fn apply_message(&mut self, sched: &mut Scheduler<Self>, env: Envelope<Msg>) {
        let ev = match env.msg {
            Msg::Admit { rid, spec, arrival } => Ev::MsgAdmit { rid, spec, arrival },
            Msg::View { group, view } => Ev::MsgView { group, view },
            Msg::Done { rid, ok } => Ev::MsgDone { rid, ok },
        };
        sched.schedule_at(env.at, ev);
    }
}
