//! The KV block map: block-granular KV-cache objects per request.
//!
//! A request's KV cache is a sequence of GPU-store objects of at most
//! [`KV_BLOCK_TOKENS`] tokens each (vLLM-style paged blocks, coarsened to
//! keep store traffic tractable). Blocks are **append-mostly**: the tail
//! block grows in place ([`grouter_store::DataStore::grow`] plus a pool
//! reservation) until it fills or its pool runs out of headroom, at which
//! point it is sealed and the next block is a fresh plane `Put` — so every
//! block rides the plane's own allocation, eviction and migration
//! machinery. Each block remembers its *home* location (where the plane
//! stored it); residency elsewhere means the pressure path migrated it.

use std::collections::BTreeMap;

use grouter_store::{DataId, DataStore, Location};
use grouter_topology::GpuRef;

/// Tokens per KV block.
pub const KV_BLOCK_TOKENS: u32 = 256;

/// One KV block object.
#[derive(Clone, Copy, Debug)]
pub struct KvBlock {
    pub id: DataId,
    /// Tokens covered by this block (≤ [`KV_BLOCK_TOKENS`]).
    pub tokens: u32,
    pub bytes: f64,
    /// Where the plane stored the block at `Put` time. The GROUTER plane
    /// pins this to the decode GPU; Mooncake+ pins it to the node's cache
    /// GPU. Any other residency is a migration.
    pub home: Location,
    /// A sealed block no longer grows in place; appends open a new block.
    pub sealed: bool,
}

/// The KV state of one request.
#[derive(Clone, Debug)]
pub struct RequestKv {
    /// Decode GPU the request is pinned to.
    pub decode_gpu: GpuRef,
    pub blocks: Vec<KvBlock>,
}

impl RequestKv {
    pub fn total_bytes(&self) -> f64 {
        self.blocks.iter().map(|b| b.bytes).sum()
    }
}

/// Request id → KV blocks, plus per-GPU live-KV totals for pinned-consumer
/// placement.
#[derive(Debug, Default)]
pub struct KvBlockMap {
    map: BTreeMap<u64, RequestKv>,
    /// Live KV bytes *homed* on each flat GPU (residency may differ while
    /// a block is migrated; placement balances by ownership).
    home_bytes: Vec<f64>,
}

impl KvBlockMap {
    pub fn new(num_gpus: usize) -> KvBlockMap {
        KvBlockMap {
            map: BTreeMap::new(),
            home_bytes: vec![0.0; num_gpus],
        }
    }

    pub fn insert(&mut self, rid: u64, kv: RequestKv, gpus_per_node: usize) {
        for b in &kv.blocks {
            self.credit(b.home, b.bytes, gpus_per_node);
        }
        self.map.insert(rid, kv);
    }

    pub fn get(&self, rid: u64) -> Option<&RequestKv> {
        self.map.get(&rid)
    }

    pub fn get_mut(&mut self, rid: u64) -> Option<&mut RequestKv> {
        self.map.get_mut(&rid)
    }

    pub fn remove(&mut self, rid: u64, gpus_per_node: usize) -> Option<RequestKv> {
        let kv = self.map.remove(&rid)?;
        for b in &kv.blocks {
            self.credit(b.home, -b.bytes, gpus_per_node);
        }
        Some(kv)
    }

    /// Record `delta` home bytes for a block (append growth or a fresh
    /// block joining the map).
    pub fn credit(&mut self, home: Location, delta: f64, gpus_per_node: usize) {
        if let Location::Gpu(g) = home {
            let idx = g.node * gpus_per_node + g.gpu;
            if idx < self.home_bytes.len() {
                self.home_bytes[idx] += delta;
            }
        }
    }

    /// Live KV bytes homed per flat GPU — the load vector
    /// [`grouter_runtime::pin_decode`] balances on.
    pub fn home_bytes(&self) -> &[f64] {
        &self.home_bytes
    }

    pub fn total_bytes(&self) -> f64 {
        self.map.values().map(|kv| kv.total_bytes()).sum()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&u64, &RequestKv)> {
        self.map.iter()
    }

    /// `--features audit`: the `llm.kv_blocks` checker. Every mapped block
    /// resolves in the store with matching byte count, and resides either
    /// at its home (the pinned decode GPU for GROUTER, the cache GPU for
    /// Mooncake+) or on host memory (pressure-migrated) — never on some
    /// third GPU the placement contract knows nothing about.
    #[cfg(feature = "audit")]
    pub fn audit_blocks(&self, store: &DataStore) {
        if !grouter_audit::every("llm.kv_blocks", 8) {
            return;
        }
        grouter_audit::record_hit("llm.kv_blocks");
        for (rid, kv) in &self.map {
            for b in &kv.blocks {
                let Some(entry) = store.peek(b.id) else {
                    grouter_audit::check("llm.kv_blocks", false, || {
                        format!("request {rid}: block {:?} vanished from the store", b.id)
                    });
                    return;
                };
                grouter_audit::check("llm.kv_blocks", entry.bytes == b.bytes, || {
                    format!(
                        "request {rid}: block {:?} map says {} bytes, store says {}",
                        b.id, b.bytes, entry.bytes
                    )
                });
                let resident_ok =
                    entry.location == b.home || matches!(entry.location, Location::Host(_));
                grouter_audit::check("llm.kv_blocks", resident_ok, || {
                    format!(
                        "request {rid}: block {:?} homed at {:?} but resident at {:?}",
                        b.id, b.home, entry.location
                    )
                });
            }
        }
    }

    #[cfg(not(feature = "audit"))]
    pub fn audit_blocks(&self, _store: &DataStore) {}
}
