//! End-to-end disaggregated serving runs with TTFT/TBT reporting.
//!
//! [`run_llm_serve`] drives open-loop arrivals through the sharded router +
//! group world on either data plane and folds every group's metrics into a
//! deterministic report. The report's CSV (and its FNV digest) is
//! byte-identical for a given seed at any worker-thread count — that is the
//! property `scripts/ci.sh` gates on.

use grouter_ctl::DecodeBudget;
use grouter_sim::rng::DetRng;
use grouter_sim::time::SimTime;
use grouter_sim::{params, ShardedEngine, Simulation};
use grouter_workloads::llm::LlmMix;
use grouter_workloads::{ArrivalPattern, OpenLoopGen};

pub use crate::group::PlaneKind;
use crate::group::{GroupEv, GroupParams, GroupState};
use crate::metrics::{fnv64, LlmMetrics};
use crate::world::{Ev, LlmWorld, RouterState};

/// Configuration of one serving run.
#[derive(Clone, Debug)]
pub struct LlmServeConfig {
    pub plane: PlaneKind,
    /// Serving groups (one node each); shard count is `groups + 1`.
    pub groups: usize,
    pub seed: u64,
    /// Total requests the open-loop source injects.
    pub requests: u64,
    /// Mean arrival rate, requests per second (whole cluster).
    pub rps: f64,
    pub pattern: ArrivalPattern,
    pub prefill_gpus: usize,
    pub decode_gpus: usize,
    pub tp: u32,
    /// Continuous-batch slots per decode GPU.
    pub max_batch: u32,
    /// Resident model weights per GPU.
    pub weights_bytes: f64,
    /// Decode activation bytes per active sequence (the pressure knob).
    pub act_per_seq: f64,
    /// Router-side KV soft cap per group (admission budget).
    pub kv_soft_cap: f64,
    pub mix: LlmMix,
    /// Chaos: fail decode GPU `(group, flat gpu index)` at the given time.
    pub fail: Option<(usize, usize, SimTime)>,
    /// Worker threads for the sharded engine.
    pub threads: usize,
}

impl LlmServeConfig {
    /// The reference setup: 13B/7B chat mix with ~2K-token prompts on H800
    /// nodes, four prefill and four decode GPUs per group, weights pinning
    /// 26 GB of each 80 GB GPU so a deep decode batch squeezes the KV pool.
    pub fn reference(plane: PlaneKind) -> LlmServeConfig {
        LlmServeConfig {
            plane,
            groups: 2,
            seed: 7,
            requests: 10_000,
            rps: 20.0,
            pattern: ArrivalPattern::Sporadic,
            prefill_gpus: 4,
            decode_gpus: 4,
            tp: 1,
            max_batch: 16,
            weights_bytes: 26e9,
            act_per_seq: 3.0e9,
            kv_soft_cap: 4.0 * 20e9,
            mix: LlmMix {
                prompt_median: 2048.0,
                output_mean: 256.0,
                ..LlmMix::chat()
            },
            fail: None,
            threads: 1,
        }
    }
}

/// The merged result of one serving run.
#[derive(Debug)]
pub struct LlmReport {
    pub metrics: LlmMetrics,
    /// Router-observed completions/failures (cross-checked against groups).
    pub completed: u64,
    pub failed: u64,
    pub migrations: u64,
    pub restores: u64,
    pub epochs: u64,
    pub messages: u64,
    /// Deterministic metrics CSV (seed- but not thread-dependent).
    pub csv: String,
    /// FNV-1a of `csv` — the digest CI compares across thread counts.
    pub digest: u64,
}

fn us(x: f64) -> f64 {
    (x * 1e6 * 1000.0).round() / 1000.0
}

/// Run one disaggregated serving experiment to completion.
pub fn run_llm_serve(cfg: &LlmServeConfig) -> LlmReport {
    assert!(cfg.groups >= 1, "need at least one serving group");
    assert!(cfg.threads >= 1, "need at least one worker thread");
    let lookahead = params::CROSS_GROUP_LATENCY;
    let mut rng = DetRng::new(cfg.seed);
    let gen = OpenLoopGen::unbounded(cfg.pattern, cfg.rps, rng.fork(1));
    let budget = DecodeBudget {
        max_active: (cfg.decode_gpus as u32) * cfg.max_batch,
        kv_soft_cap: cfg.kv_soft_cap,
    };
    let mut router = RouterState::new(
        gen,
        cfg.requests,
        cfg.mix.clone(),
        rng.fork(2),
        cfg.groups,
        budget,
    );
    let first = router.gen.next().unwrap_or(SimTime::ZERO);

    let gp = GroupParams {
        plane: cfg.plane,
        prefill_gpus: cfg.prefill_gpus,
        decode_gpus: cfg.decode_gpus,
        tp: cfg.tp,
        max_batch: cfg.max_batch,
        weights_bytes: cfg.weights_bytes,
        act_per_seq: cfg.act_per_seq,
        touch_tokens: 64,
    };

    let mut sims: Vec<Simulation<LlmWorld>> = Vec::with_capacity(cfg.groups + 1);
    let mut router_sim = Simulation::new(LlmWorld::router(router, lookahead));
    router_sim.sched.schedule_at(first, Ev::Arrival);
    sims.push(router_sim);
    for g in 0..cfg.groups {
        let mut sim = Simulation::new(LlmWorld::group(g, GroupState::new(gp), lookahead));
        if let Some((fg, gpu, at)) = cfg.fail {
            if fg == g {
                sim.sched.schedule_at(at, Ev::Group(GroupEv::Fail { gpu }));
            }
        }
        sims.push(sim);
    }

    let mut engine = ShardedEngine::from_sims(sims, lookahead);
    let stats = engine.run(cfg.threads);

    let mut metrics = LlmMetrics::default();
    let mut migrations = 0u64;
    let mut restores = 0u64;
    for g in 0..cfg.groups {
        let world = &engine.shard(g + 1).world;
        let Some(gs) = world.group_state() else {
            continue;
        };
        // A finished run must leave nothing behind: every request resolved,
        // every KV block consumed, every pool byte and scaler reservation
        // returned. This is the leak contract chaos tests replay against.
        gs.assert_drained();
        metrics.merge(&gs.metrics);
        let ps = gs.plane.stats();
        migrations += ps.migrations;
        restores += ps.restores;
    }
    let (completed, failed) = engine
        .shard(0)
        .world
        .router_state()
        .map(|r| (r.completed, r.failed))
        .unwrap_or((0, 0));

    let csv = format!(
        "plane,admitted,completed,failed,tokens,ttft_p50_us,ttft_p99_us,\
         tbt_mean_us,tbt_p99_us,migrations,restores,stalls,remat\n\
         {},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{},{},{},{}\n",
        match cfg.plane {
            PlaneKind::Grouter => "grouter",
            PlaneKind::Mooncake => "mooncake",
        },
        metrics.admitted,
        metrics.completed,
        metrics.failed,
        metrics.tokens,
        us(metrics.ttft.p50()),
        us(metrics.ttft.p99()),
        us(metrics.tbt.mean()),
        us(metrics.tbt.p99()),
        migrations,
        restores,
        metrics.restore_stalls,
        metrics.rematerialized,
    );
    let digest = fnv64(csv.as_bytes());

    LlmReport {
        metrics,
        completed,
        failed,
        migrations,
        restores,
        epochs: stats.epochs,
        messages: stats.messages,
        csv,
        digest,
    }
}
