//! # grouter-llm
//!
//! Prefill/decode-disaggregated LLM serving over the GPU store (ROADMAP
//! item 3, the dynamic half of the paper's §6 LLM experiment; DESIGN.md
//! §5.10).
//!
//! The subsystem models what the static Fig. 19 TTFT study cannot: **KV
//! caches as live, growing GPU-store objects**. Prefill instances produce
//! block-granular KV objects (chunked `Put`s of
//! [`blocks::KV_BLOCK_TOKENS`]-token blocks), hand them off to a decode
//! instance chosen by pinned-consumer placement
//! ([`grouter_runtime::pin_decode`]), and decode then runs as a stream of
//! small per-token invocations — one `Get` of the resident KV plus one
//! small append per token, continuous-batched per decode GPU. Under memory
//! pressure (decode activations growing with the batch), the data plane's
//! own migration machinery re-hosts cold KV blocks to host memory; the
//! GROUTER plane restores them proactively, the Mooncake+ baseline keeps
//! paying host-read stalls.
//!
//! * [`request`] — request identity and per-request serving state.
//! * [`blocks`] — the KV block map: block-granular store objects per
//!   request, home-GPU pinning, residency tracking.
//! * [`exec`] — the analytic operation executor (durations from hardware
//!   link capacities; per-leg resource release mirroring the full
//!   executor's contract).
//! * [`group`] — one serving group: prefill engines, decode engines,
//!   pressure hooks, chaos fail script.
//! * [`world`] — the sharded world: one router shard + N serving-group
//!   shards exchanging timestamped envelopes.
//! * [`serve`] — configuration and the end-to-end entry point.
//! * [`metrics`] — TTFT/TBT accounting, the merged CSV and its digest.

pub mod blocks;
pub mod exec;
pub mod group;
pub mod metrics;
pub mod request;
pub mod serve;
pub mod world;

pub use blocks::{KvBlock, KvBlockMap, RequestKv, KV_BLOCK_TOKENS};
pub use metrics::{fnv64, LlmMetrics};
pub use serve::{run_llm_serve, LlmReport, LlmServeConfig, PlaneKind};
