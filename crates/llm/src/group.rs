//! One serving group: a node's prefill engines, decode engines, GPU store
//! and data plane.
//!
//! A group is a self-contained shard: it owns its topology, flow network,
//! store, pools and plane, and talks to the router only through typed
//! envelopes. Prefill runs as a serial per-GPU queue (earliest-free GPU
//! wins); decode runs as continuous batches, one per decode GPU, emitting
//! one token per batch step. KV lives in the GPU store as block objects
//! ([`crate::blocks`]); growth, pressure migration and host restores all
//! go through the plane under test, which is what the TTFT/TBT gates
//! measure.

use std::collections::BTreeMap;

use grouter::{GrouterConfig, GrouterPlane};
use grouter_baselines::MooncakePlane;
use grouter_ctl::DecodeView;
use grouter_mem::{ElasticPool, PinnedRing, PoolDiscipline, PrewarmScaler};
use grouter_runtime::dataplane::{DataPlane, Destination, PlaneCtx};
use grouter_runtime::pin_decode;
use grouter_sim::time::{SimDuration, SimTime};
use grouter_sim::{params, FlowNet};
use grouter_store::{AccessToken, DataStore, FunctionId, Location, WorkflowId};
use grouter_topology::{presets, GpuRef, PathLedger, Topology};
use grouter_transfer::rate::RateController;
use grouter_workloads::llm::LlmRequestSpec;

use crate::blocks::{KvBlock, KvBlockMap, RequestKv, KV_BLOCK_TOKENS};
use crate::exec::{run_op, run_ops};
use crate::metrics::LlmMetrics;
use crate::request::ActiveRequest;

/// Which data plane a group serves over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlaneKind {
    /// The full GROUTER plane: locality puts, elastic storage, proactive
    /// restoration.
    Grouter,
    /// The Mooncake+ baseline: every object staged through the node's
    /// fixed cache GPU, LRU eviction to host, no proactive restore.
    Mooncake,
}

/// Group-level configuration (shared by every group of a run).
#[derive(Clone, Copy, Debug)]
pub struct GroupParams {
    pub plane: PlaneKind,
    /// GPUs `[0, prefill_gpus)` run prefill.
    pub prefill_gpus: usize,
    /// GPUs `[prefill_gpus, prefill_gpus + decode_gpus)` run decode.
    pub decode_gpus: usize,
    pub tp: u32,
    /// Continuous-batch slots per decode GPU.
    pub max_batch: u32,
    /// Model weights resident on every GPU (runtime footprint floor).
    pub weights_bytes: f64,
    /// Decode activation/scratch bytes per active sequence — the pressure
    /// knob: a growing batch shrinks the pool's storage cap and triggers
    /// the plane's migration path.
    pub act_per_seq: f64,
    /// Every this-many tokens, decode re-touches its KV: blocks not
    /// resident on the decode GPU are fetched through the plane (remote
    /// relay for Mooncake+, h2d restore for migrated blocks).
    pub touch_tokens: u32,
}

/// Events a group schedules for itself.
#[derive(Clone, Copy, Debug)]
pub enum GroupEv {
    PrefillDone {
        rid: u64,
    },
    HandoffDone {
        rid: u64,
    },
    DecodeTick {
        gpu: usize,
    },
    Beat,
    /// Chaos script: the decode GPU at this flat index fails.
    Fail {
        gpu: usize,
    },
}

/// Messages a group emits toward the router.
#[derive(Clone, Copy, Debug)]
pub enum GroupOut {
    View(DecodeView),
    Done { rid: u64, ok: bool },
}

/// Scheduling/sending side effects of one group step, applied by the world.
#[derive(Debug, Default)]
pub struct Actions {
    pub schedule: Vec<(SimTime, GroupEv)>,
    pub send: Vec<GroupOut>,
}

impl Actions {
    fn at(&mut self, t: SimTime, ev: GroupEv) {
        self.schedule.push((t, ev));
    }
    fn send(&mut self, out: GroupOut) {
        self.send.push(out);
    }
}

pub struct GroupState {
    pub params: GroupParams,
    pub topo: Topology,
    pub net: FlowNet,
    pub store: DataStore,
    pub pools: Vec<ElasticPool>,
    pub scalers: Vec<PrewarmScaler>,
    pub ledgers: Vec<PathLedger>,
    pub pinned: Vec<PinnedRing>,
    pub rates: Vec<RateController>,
    pub plane: Box<dyn DataPlane>,
    /// Earliest instant each prefill GPU is free (serial prefill queue).
    prefill_free_at: Vec<SimTime>,
    /// Continuous batch per decode GPU (flat index): sorted request ids.
    batches: BTreeMap<usize, Vec<u64>>,
    tick_scheduled: BTreeMap<usize, bool>,
    pub requests: BTreeMap<u64, ActiveRequest>,
    pub kv: KvBlockMap,
    failed: Vec<bool>,
    beat_on: bool,
    pub metrics: LlmMetrics,
    /// Monotone ordinal for `next_use` eviction hints.
    next_use_clock: u64,
}

impl GroupState {
    pub fn new(p: GroupParams) -> GroupState {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::h800x8(), 1, &mut net);
        let n_gpus = topo.num_gpus();
        let mut pools: Vec<ElasticPool> = (0..n_gpus)
            .map(|_| ElasticPool::new(PoolDiscipline::Elastic, topo.gpu_mem_bytes()))
            .collect();
        for pool in &mut pools {
            // Model weights are resident everywhere from the start; the
            // storage cap is computed over what remains.
            let _ = pool.set_runtime_used(p.weights_bytes);
        }
        let scalers = (0..n_gpus).map(|_| PrewarmScaler::new()).collect();
        let ledgers = vec![PathLedger::from_topology(&topo)];
        let pinned = vec![PinnedRing::new(params::PINNED_RING_BYTES)];
        let rates = vec![RateController::new()];
        let plane: Box<dyn DataPlane> = match p.plane {
            PlaneKind::Grouter => Box::new(GrouterPlane::new(GrouterConfig::full())),
            PlaneKind::Mooncake => Box::new(MooncakePlane::new(p.tp)),
        };
        let mut batches = BTreeMap::new();
        let mut tick_scheduled = BTreeMap::new();
        for g in p.prefill_gpus..p.prefill_gpus + p.decode_gpus {
            batches.insert(g, Vec::new());
            tick_scheduled.insert(g, false);
        }
        GroupState {
            prefill_free_at: vec![SimTime::ZERO; p.prefill_gpus],
            kv: KvBlockMap::new(n_gpus),
            failed: vec![false; n_gpus],
            params: p,
            topo,
            net,
            store: DataStore::new(1),
            pools,
            scalers,
            ledgers,
            pinned,
            rates,
            plane,
            batches,
            tick_scheduled,
            requests: BTreeMap::new(),
            beat_on: false,
            metrics: LlmMetrics::default(),
            next_use_clock: 0,
        }
    }

    fn token(rid: u64) -> AccessToken {
        AccessToken {
            function: FunctionId(rid),
            workflow: WorkflowId(rid),
        }
    }

    /// Run a closure against the plane with a freshly assembled context.
    fn with_plane<R>(
        &mut self,
        now: SimTime,
        f: impl FnOnce(&mut dyn DataPlane, &mut PlaneCtx<'_>) -> R,
    ) -> R {
        let GroupState {
            topo,
            net,
            store,
            pools,
            scalers,
            ledgers,
            pinned,
            rates,
            plane,
            ..
        } = self;
        let mut ctx = PlaneCtx {
            topo,
            net,
            store,
            pools,
            scalers,
            ledgers,
            pinned,
            rates,
            now,
            slo: None,
            trace: grouter_obs::Recorder::disabled(),
        };
        f(plane.as_mut(), &mut ctx)
    }

    fn run(&mut self, op: &grouter_runtime::DataOp) -> SimDuration {
        run_op(
            op,
            &self.net,
            &mut self.ledgers,
            &mut self.pinned,
            &mut self.rates,
        )
    }

    fn run_background(&mut self, ops: &[grouter_runtime::DataOp]) -> SimDuration {
        run_ops(
            ops,
            &self.net,
            &mut self.ledgers,
            &mut self.pinned,
            &mut self.rates,
        )
    }

    /// The heartbeat view the router sees.
    pub fn view(&self) -> DecodeView {
        let active = self
            .requests
            .values()
            .filter(|r| r.decode_gpu.is_some())
            .count() as u32;
        DecodeView {
            active,
            kv_bytes: self.kv.total_bytes(),
            queued: self.requests.len() as u32 - active,
        }
    }

    pub fn quiescent(&self) -> bool {
        self.requests.is_empty() && self.kv.is_empty()
    }

    fn ensure_beat(&mut self, now: SimTime, out: &mut Actions) {
        if !self.beat_on {
            self.beat_on = true;
            out.at(now + params::HEARTBEAT_INTERVAL, GroupEv::Beat);
        }
    }

    pub fn beat(&mut self, now: SimTime, out: &mut Actions) {
        if self.requests.is_empty() {
            self.beat_on = false;
            return;
        }
        out.send(GroupOut::View(self.view()));
        out.at(now + params::HEARTBEAT_INTERVAL, GroupEv::Beat);
    }

    // ------------------------------------------------------------------
    // Prefill
    // ------------------------------------------------------------------

    /// Admit one request into the group (router `Admit` envelope).
    pub fn admit(
        &mut self,
        now: SimTime,
        rid: u64,
        spec: LlmRequestSpec,
        arrival: SimTime,
        out: &mut Actions,
    ) {
        self.metrics.admitted += 1;
        self.requests.insert(rid, ActiveRequest::new(spec, arrival));
        self.start_prefill(now, rid, out);
        self.ensure_beat(now, out);
    }

    /// Queue `rid` on the earliest-free healthy prefill GPU.
    fn start_prefill(&mut self, now: SimTime, rid: u64, out: &mut Actions) {
        let Some(req) = self.requests.get(&rid) else {
            return;
        };
        let mut best: Option<usize> = None;
        for g in 0..self.params.prefill_gpus {
            if self.failed[g] {
                continue;
            }
            match best {
                Some(b) if self.prefill_free_at[g] >= self.prefill_free_at[b] => {}
                _ => best = Some(g),
            }
        }
        let Some(g) = best else {
            self.fail_request(now, rid, out);
            return;
        };
        let start = now.max(self.prefill_free_at[g]);
        let done = start
            + req
                .spec
                .model
                .prefill_latency(req.kv_tokens, self.params.tp);
        self.prefill_free_at[g] = done;
        if let Some(r) = self.requests.get_mut(&rid) {
            r.decode_gpu = None;
        }
        out.at(done, GroupEv::PrefillDone { rid });
    }

    /// Prefill finished: chunk the KV into block objects on the prefill
    /// GPU, pick the decode pin, and hand every block off through the
    /// plane (get to the decode GPU, consume the source, re-put at the
    /// decode pin — Mooncake+ stages both directions through its cache
    /// GPU; GROUTER's locality put lands directly on the pin).
    pub fn prefill_done(&mut self, now: SimTime, rid: u64, out: &mut Actions) {
        let Some(req) = self.requests.get(&rid) else {
            return;
        };
        let spec = req.spec;
        let kv_tokens = req.kv_tokens;
        // KV was produced on the least-loaded prefill GPU; which one no
        // longer matters for the handoff (intra-node costs are uniform
        // across prefill GPUs), so block sources rotate for link balance.
        let pf = GpuRef::new(0, (rid as usize) % self.params.prefill_gpus.max(1));
        let per_token = spec.model.kv_bytes_per_token();

        // Chunked puts: one store object per KV block.
        let mut t = now;
        let mut staged: Vec<(grouter_store::DataId, u32, f64)> = Vec::new();
        let mut remaining = kv_tokens;
        while remaining > 0 {
            let tok = remaining.min(KV_BLOCK_TOKENS);
            let bytes = per_token * tok as f64;
            let put = self.with_plane(t, |p, ctx| {
                p.put(ctx, Self::token(rid), Destination::Gpu(pf), bytes, 1)
            });
            match put {
                Ok(po) => {
                    t += self.run(&po.op);
                    staged.push((po.id, tok, bytes));
                }
                Err(_) => break,
            }
            remaining -= tok;
        }

        // Pinned-consumer placement over healthy decode GPUs.
        let eligible: Vec<usize> = (self.params.prefill_gpus
            ..self.params.prefill_gpus + self.params.decode_gpus)
            .filter(|&g| !self.failed[g])
            .collect();
        if eligible.is_empty() {
            for (id, _, _) in &staged {
                let ops = self.with_plane(t, |p, ctx| p.on_consumed(ctx, *id));
                self.run_background(&ops);
            }
            self.fail_request(now, rid, out);
            return;
        }
        let dg_flat = pin_decode(self.kv.home_bytes(), &eligible);
        let dg = GpuRef::new(0, dg_flat);

        // Handoff: fetch every block to the decode GPU in parallel.
        let mut hand = SimDuration::ZERO;
        for (id, _, _) in &staged {
            let got = self.with_plane(t, |p, ctx| {
                p.get(ctx, Self::token(rid), *id, Destination::Gpu(dg))
            });
            if let Ok(op) = got {
                hand = hand.max(self.run(&op));
            }
        }
        t += hand;

        // Consume the staged source blocks and re-put each one at its
        // decode home.
        let mut blocks: Vec<KvBlock> = Vec::with_capacity(staged.len());
        for (id, tok, bytes) in &staged {
            let ops = self.with_plane(t, |p, ctx| p.on_consumed(ctx, *id));
            self.run_background(&ops);
            let put = self.with_plane(t, |p, ctx| {
                p.put(ctx, Self::token(rid), Destination::Gpu(dg), *bytes, 1)
            });
            if let Ok(po) = put {
                t += self.run(&po.op);
                let home = self
                    .store
                    .peek(po.id)
                    .map(|e| e.location)
                    .unwrap_or(Location::Gpu(dg));
                blocks.push(KvBlock {
                    id: po.id,
                    tokens: *tok,
                    bytes: *bytes,
                    home,
                    sealed: true,
                });
            }
        }
        if let Some(tail) = blocks.last_mut() {
            tail.sealed = tail.tokens >= KV_BLOCK_TOKENS;
        }
        self.kv.insert(
            rid,
            RequestKv {
                decode_gpu: dg,
                blocks,
            },
            self.topo.gpus_per_node(),
        );
        self.refresh_next_use(rid);
        if let Some(r) = self.requests.get_mut(&rid) {
            r.decode_gpu = Some(dg);
            r.ready_at = t + spec.model.first_token_latency(self.params.tp);
        }
        out.at(t, GroupEv::HandoffDone { rid });
        self.kv.audit_blocks(&self.store);
    }

    // ------------------------------------------------------------------
    // Decode
    // ------------------------------------------------------------------

    /// Handoff complete: join the decode GPU's continuous batch.
    pub fn handoff_done(&mut self, now: SimTime, rid: u64, out: &mut Actions) {
        let Some(dg) = self.requests.get(&rid).and_then(|r| r.decode_gpu) else {
            return;
        };
        let flat = dg.gpu;
        if let Some(batch) = self.batches.get_mut(&flat) {
            if let Err(pos) = batch.binary_search(&rid) {
                batch.insert(pos, rid);
            }
        }
        self.update_pressure(now, flat);
        let step = self.step_latency(flat);
        if let Some(flag) = self.tick_scheduled.get_mut(&flat) {
            if !*flag {
                *flag = true;
                out.at(now + step, GroupEv::DecodeTick { gpu: flat });
            }
        }
    }

    /// Decode batch footprint changed: republish the GPU's runtime memory
    /// (weights + per-sequence activations) and let the plane react —
    /// migrating KV overage out, or proactively restoring when pressure
    /// dropped.
    fn update_pressure(&mut self, now: SimTime, flat: usize) {
        let n = self.batches.get(&flat).map(|b| b.len()).unwrap_or(0) as f64;
        let used = self.params.weights_bytes + self.params.act_per_seq * n;
        let _overflow = self.pools[flat].set_runtime_used(used);
        let gpu = GpuRef::new(0, flat);
        let ops = self.with_plane(now, |p, ctx| p.on_memory_change(ctx, gpu));
        self.run_background(&ops);
    }

    /// One decode step on `gpu`'s batch.
    fn step_latency(&self, gpu: usize) -> SimDuration {
        let Some(batch) = self.batches.get(&gpu) else {
            return SimDuration::from_millis(1);
        };
        let n = batch.len() as u32;
        let mut step = SimDuration::from_millis(1);
        for rid in batch {
            if let Some(r) = self.requests.get(rid) {
                step = step.max(r.spec.model.decode_step_latency(n, self.params.tp));
            }
        }
        step
    }

    pub fn decode_tick(&mut self, now: SimTime, gpu: usize, out: &mut Actions) {
        if let Some(flag) = self.tick_scheduled.get_mut(&gpu) {
            *flag = false;
        }
        let rids: Vec<u64> = self.batches.get(&gpu).cloned().unwrap_or_default();
        if rids.is_empty() {
            return;
        }
        let step = self.step_latency(gpu);
        let mut finished: Vec<u64> = Vec::new();
        for rid in rids {
            let ready = match self.requests.get(&rid) {
                Some(r) => r.ready_at,
                None => continue,
            };
            if ready > now {
                continue;
            }
            self.emit_token(now, rid);
            let emitted = self
                .requests
                .get(&rid)
                .map(|r| r.stream.emitted)
                .unwrap_or(0);
            if emitted > 0 && emitted.is_multiple_of(self.params.touch_tokens) {
                let stall = self.touch_kv(now, rid);
                if stall > SimDuration::ZERO {
                    self.metrics.restore_stalls += 1;
                    if let Some(r) = self.requests.get_mut(&rid) {
                        r.ready_at = now + stall;
                    }
                }
            }
            if self
                .requests
                .get(&rid)
                .map(|r| r.stream.complete())
                .unwrap_or(false)
            {
                finished.push(rid);
            }
        }
        for rid in finished {
            self.complete_request(now, rid, out);
        }
        let live = self
            .batches
            .get(&gpu)
            .map(|b| !b.is_empty())
            .unwrap_or(false);
        if live {
            if let Some(flag) = self.tick_scheduled.get_mut(&gpu) {
                *flag = true;
            }
            out.at(now + step, GroupEv::DecodeTick { gpu });
        }
        self.kv.audit_blocks(&self.store);
    }

    /// Emit one token: record stream progress and append its KV.
    fn emit_token(&mut self, now: SimTime, rid: u64) {
        #[cfg(feature = "audit")]
        if let Some(r) = self.requests.get(&rid) {
            grouter_audit::check(
                "llm.stream_order",
                r.stream.last_emit.map(|t| now >= t).unwrap_or(true),
                || format!("request {rid}: token completion before its predecessor"),
            );
        }
        if let Some(r) = self.requests.get_mut(&rid) {
            r.stream.emit(now);
        }
        self.metrics.tokens += 1;
        self.append_kv(now, rid);
    }

    /// Append one token's KV: grow the tail block in place when its pool
    /// has headroom, otherwise seal it and open a fresh block through the
    /// plane (whose put path owns eviction/migration under pressure).
    fn append_kv(&mut self, now: SimTime, rid: u64) {
        let Some((model, dg)) = self
            .requests
            .get(&rid)
            .and_then(|r| r.decode_gpu.map(|d| (r.spec.model, d)))
        else {
            return;
        };
        let delta = model.kv_bytes_per_token();
        let tail = self
            .kv
            .get(rid)
            .and_then(|kv| kv.blocks.last())
            .map(|b| (b.id, b.tokens, b.sealed, b.home));
        let mut grown = false;
        if let Some((tid, tokens, sealed, home)) = tail {
            if !sealed && tokens < KV_BLOCK_TOKENS {
                let loc = self.store.peek(tid).map(|e| e.location);
                let reserve = match loc {
                    Some(Location::Gpu(g)) => {
                        let flat = g.node * self.topo.gpus_per_node() + g.gpu;
                        self.pools[flat].try_alloc(delta).is_ok()
                    }
                    // Migrated tails grow host-side; host memory is not
                    // pool-tracked.
                    Some(Location::Host(_)) => true,
                    None => false,
                };
                if reserve && self.store.grow(now, tid, delta).is_ok() {
                    let gpn = self.topo.gpus_per_node();
                    if let Some(kv) = self.kv.get_mut(rid) {
                        if let Some(b) = kv.blocks.last_mut() {
                            b.tokens += 1;
                            b.bytes += delta;
                            if b.tokens >= KV_BLOCK_TOKENS {
                                b.sealed = true;
                            }
                        }
                    }
                    self.kv.credit(home, delta, gpn);
                    grown = true;
                }
            }
        }
        if !grown {
            // Seal the tail (it is full, or its pool is out of headroom)
            // and open a new block through the plane.
            if let Some(kv) = self.kv.get_mut(rid) {
                if let Some(b) = kv.blocks.last_mut() {
                    b.sealed = true;
                }
            }
            let put = self.with_plane(now, |p, ctx| {
                p.put(ctx, Self::token(rid), Destination::Gpu(dg), delta, 1)
            });
            if let Ok(po) = put {
                self.run(&po.op);
                let home = self
                    .store
                    .peek(po.id)
                    .map(|e| e.location)
                    .unwrap_or(Location::Gpu(dg));
                let gpn = self.topo.gpus_per_node();
                if let Some(kv) = self.kv.get_mut(rid) {
                    kv.blocks.push(KvBlock {
                        id: po.id,
                        tokens: 1,
                        bytes: delta,
                        home,
                        sealed: false,
                    });
                }
                self.kv.credit(home, delta, gpn);
            }
            self.refresh_next_use(rid);
        }
    }

    /// The periodic KV touch: fetch every block not resident on the decode
    /// GPU (Mooncake+ relays from its cache GPU; migrated blocks restore
    /// from host). Returns the stall the stream absorbs.
    fn touch_kv(&mut self, now: SimTime, rid: u64) -> SimDuration {
        let Some(kvreq) = self.kv.get(rid) else {
            return SimDuration::ZERO;
        };
        let dg = kvreq.decode_gpu;
        let ids: Vec<grouter_store::DataId> = kvreq.blocks.iter().map(|b| b.id).collect();
        let mut stall = SimDuration::ZERO;
        for id in ids {
            let resident = self
                .store
                .peek(id)
                .map(|e| e.location == Location::Gpu(dg))
                .unwrap_or(true);
            if resident {
                continue;
            }
            let got = self.with_plane(now, |p, ctx| {
                p.get(ctx, Self::token(rid), id, Destination::Gpu(dg))
            });
            if let Ok(op) = got {
                stall = stall + self.run(&op);
            }
        }
        stall
    }

    /// Refresh eviction hints: the tail block is about to be appended
    /// (near use), older blocks are only re-read at touch points (far), so
    /// the plane's queue-aware victim selection migrates cold blocks first.
    fn refresh_next_use(&mut self, rid: u64) {
        self.next_use_clock += 1;
        let clock = self.next_use_clock;
        let Some(kvreq) = self.kv.get(rid) else {
            return;
        };
        let n = kvreq.blocks.len();
        let hints: Vec<(grouter_store::DataId, u64)> = kvreq
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let rank = if i + 1 == n {
                    clock
                } else {
                    clock + 1_000 + (n - i) as u64
                };
                (b.id, rank)
            })
            .collect();
        for (id, rank) in hints {
            self.store.set_next_use(id, Some(rank));
        }
    }

    // ------------------------------------------------------------------
    // Completion, failure, chaos
    // ------------------------------------------------------------------

    /// Drop a request's KV through the consumed path (pool bytes freed,
    /// scaler live-output released — identical accounting whether the
    /// bytes were read or lost).
    fn drop_kv(&mut self, now: SimTime, rid: u64) {
        let Some(kvreq) = self.kv.remove(rid, self.topo.gpus_per_node()) else {
            return;
        };
        for b in kvreq.blocks {
            let ops = self.with_plane(now, |p, ctx| p.on_consumed(ctx, b.id));
            self.run_background(&ops);
        }
    }

    fn complete_request(&mut self, now: SimTime, rid: u64, out: &mut Actions) {
        self.drop_kv(now, rid);
        let Some(req) = self.requests.remove(&rid) else {
            return;
        };
        self.metrics.completed += 1;
        if let Some(t) = req.stream.ttft() {
            self.metrics.ttft.record(t.as_secs_f64());
        }
        if let Some(t) = req.stream.mean_tbt() {
            self.metrics.tbt.record(t.as_secs_f64());
        }
        self.leave_batch(now, rid, req.decode_gpu);
        out.send(GroupOut::Done { rid, ok: true });
        out.send(GroupOut::View(self.view()));
    }

    /// Typed failure: the request leaves the system with its KV dropped
    /// and the router told.
    fn fail_request(&mut self, now: SimTime, rid: u64, out: &mut Actions) {
        self.drop_kv(now, rid);
        let Some(req) = self.requests.remove(&rid) else {
            return;
        };
        self.metrics.failed += 1;
        self.leave_batch(now, rid, req.decode_gpu);
        out.send(GroupOut::Done { rid, ok: false });
        out.send(GroupOut::View(self.view()));
    }

    fn leave_batch(&mut self, now: SimTime, rid: u64, dg: Option<GpuRef>) {
        let Some(dg) = dg else {
            return;
        };
        let flat = dg.gpu;
        if let Some(batch) = self.batches.get_mut(&flat) {
            if let Ok(pos) = batch.binary_search(&rid) {
                batch.remove(pos);
            }
        }
        self.update_pressure(now, flat);
    }

    /// Chaos: a decode GPU fails mid-stream. Requests pinned there lose
    /// their KV; each gets one lineage re-materialization (a fresh prefill
    /// over prompt + generated-so-far), a second loss is a typed failure.
    pub fn fail_gpu(&mut self, now: SimTime, gpu: usize, out: &mut Actions) {
        if gpu >= self.failed.len() || self.failed[gpu] {
            return;
        }
        self.failed[gpu] = true;
        let rids: Vec<u64> = self
            .batches
            .get_mut(&gpu)
            .map(std::mem::take)
            .unwrap_or_default();
        // Also catch requests pinned to the GPU but still in handoff.
        let pinned_inflight: Vec<u64> = self
            .requests
            .iter()
            .filter(|(rid, r)| {
                !rids.contains(rid) && r.decode_gpu.map(|d| d.gpu == gpu).unwrap_or(false)
            })
            .map(|(rid, _)| *rid)
            .collect();
        for rid in rids.into_iter().chain(pinned_inflight) {
            self.drop_kv(now, rid);
            let retried = self.requests.get(&rid).map(|r| r.retried).unwrap_or(true);
            if retried {
                let Some(_req) = self.requests.remove(&rid) else {
                    continue;
                };
                self.metrics.failed += 1;
                out.send(GroupOut::Done { rid, ok: false });
            } else if let Some(r) = self.requests.get_mut(&rid) {
                r.retried = true;
                r.decode_gpu = None;
                r.kv_tokens = r.spec.prompt_tokens + r.stream.emitted;
                self.metrics.rematerialized += 1;
                self.start_prefill(now, rid, out);
            }
        }
        // The dead GPU's batch is gone: republish its runtime footprint.
        let _ = self.pools[gpu].set_runtime_used(self.params.weights_bytes);
        out.send(GroupOut::View(self.view()));
    }

    /// Leak check for chaos/golden tests: after a drained run nothing may
    /// linger in the store, the pools, or the prewarm scalers.
    pub fn assert_drained(&self) {
        assert!(self.requests.is_empty(), "requests linger");
        assert!(self.kv.is_empty(), "KV blocks linger");
        assert_eq!(self.store.len(), 0, "store not empty");
        for (i, pool) in self.pools.iter().enumerate() {
            assert_eq!(pool.used(), 0.0, "pool {i} leaks stored bytes");
        }
        for (i, sc) in self.scalers.iter().enumerate() {
            assert_eq!(sc.total_live_outputs(), 0, "scaler {i} leaks live outputs");
        }
    }
}
