//! End-to-end gates for the disaggregated serving subsystem: determinism
//! across worker-thread counts, completion accounting on both planes, and
//! chaos replay of a decode-GPU failure.

use grouter_llm::{run_llm_serve, LlmServeConfig, PlaneKind};
use grouter_sim::time::{SimDuration, SimTime};

/// A reduced-scale config that still exercises admission, handoff, batching
/// and pressure in a few seconds of wall time.
fn small(plane: PlaneKind) -> LlmServeConfig {
    LlmServeConfig {
        requests: 300,
        rps: 40.0,
        ..LlmServeConfig::reference(plane)
    }
}

#[test]
fn serve_is_byte_identical_across_worker_threads() {
    for plane in [PlaneKind::Grouter, PlaneKind::Mooncake] {
        let mut digests = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = LlmServeConfig {
                threads,
                ..small(plane)
            };
            let report = run_llm_serve(&cfg);
            digests.push((report.digest, report.csv.clone()));
        }
        assert_eq!(
            digests[0].1, digests[1].1,
            "{plane:?}: 1-thread vs 2-thread CSV diverged"
        );
        assert_eq!(
            digests[0].1, digests[2].1,
            "{plane:?}: 1-thread vs 8-thread CSV diverged"
        );
        assert_eq!(digests[0].0, digests[1].0);
        assert_eq!(digests[0].0, digests[2].0);
    }
}

#[test]
fn every_request_resolves_on_both_planes() {
    for plane in [PlaneKind::Grouter, PlaneKind::Mooncake] {
        let cfg = small(plane);
        let report = run_llm_serve(&cfg);
        assert_eq!(
            report.completed + report.failed,
            cfg.requests,
            "{plane:?}: requests leaked at the router"
        );
        assert_eq!(
            report.metrics.completed + report.metrics.failed,
            cfg.requests,
            "{plane:?}: requests leaked in the groups"
        );
        assert!(report.completed > 0, "{plane:?}: nothing completed");
        assert!(
            report.metrics.ttft.len() as u64 == report.completed,
            "{plane:?}: one TTFT sample per completion"
        );
        assert!(report.metrics.tokens > 0);
    }
}

#[test]
fn seeds_change_the_outcome_and_reseeds_reproduce_it() {
    let a = run_llm_serve(&small(PlaneKind::Grouter));
    let b = run_llm_serve(&small(PlaneKind::Grouter));
    assert_eq!(a.digest, b.digest, "same seed must reproduce");
    let c = run_llm_serve(&LlmServeConfig {
        seed: 8,
        ..small(PlaneKind::Grouter)
    });
    assert_ne!(a.digest, c.digest, "a different seed must perturb the run");
}

#[test]
fn decode_gpu_failure_rematerializes_and_replays_identically() {
    let base = small(PlaneKind::Grouter);
    let cfg = LlmServeConfig {
        // Fail the second decode GPU of group 0 (decode instances occupy the
        // flat indices after the prefill GPUs) two seconds in, mid-stream.
        fail: Some((
            0,
            base.prefill_gpus + 1,
            SimTime::ZERO + SimDuration::from_secs(2),
        )),
        ..base
    };
    let a = run_llm_serve(&cfg);
    // Every request still resolves (re-materialized from lineage or failed
    // typed) and the leak check inside run_llm_serve already passed.
    assert_eq!(a.completed + a.failed, cfg.requests);
    assert!(
        a.metrics.rematerialized > 0 || a.failed > 0,
        "the failure window must hit at least one in-flight stream"
    );
    // Same-seed chaos replay is byte-identical, at any thread count.
    let b = run_llm_serve(&LlmServeConfig {
        threads: 8,
        ..cfg.clone()
    });
    assert_eq!(a.csv, b.csv);
    assert_eq!(a.digest, b.digest);
}
