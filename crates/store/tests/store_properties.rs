//! Property tests over the metadata store: consistency of the hierarchical
//! tables under arbitrary interleavings of puts, resolves, consumes and
//! relocations.

use proptest::prelude::*;

use grouter_sim::rng::DetRng;
use grouter_sim::time::SimTime;
use grouter_store::{AccessToken, DataId, DataStore, FunctionId, Location, WorkflowId};
use grouter_topology::GpuRef;

#[derive(Clone, Debug)]
enum Op {
    Put { wf: u64, gpu: bool, bytes: u16 },
    Resolve { node: u8, wf: u64 },
    Consume,
    Relocate { to_host: bool },
    NextUse { rank: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..4, any::<bool>(), 1u16..1000).prop_map(|(wf, gpu, bytes)| Op::Put {
            wf,
            gpu,
            bytes
        }),
        (0u8..2, 0u64..4).prop_map(|(node, wf)| Op::Resolve { node, wf }),
        Just(Op::Consume),
        any::<bool>().prop_map(|to_host| Op::Relocate { to_host }),
        (0u64..100).prop_map(|rank| Op::NextUse { rank }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The store never loses or duplicates objects, access control is
    /// airtight, and byte accounting per location always sums to the live
    /// total.
    #[test]
    fn store_consistency(ops in proptest::collection::vec(arb_op(), 1..80), seed in 0u64..1000) {
        let mut rng = DetRng::new(seed);
        let mut store = DataStore::new(2);
        // Shadow model: (id, wf, bytes, consumers_left)
        let mut live: Vec<(DataId, u64, f64)> = Vec::new();
        let mut total_bytes = 0.0f64;
        let now = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Put { wf, gpu, bytes } => {
                    let token = AccessToken {
                        function: FunctionId(1),
                        workflow: WorkflowId(wf),
                    };
                    let loc = if gpu {
                        Location::Gpu(GpuRef::new(0, (rng.next_below(8)) as usize))
                    } else {
                        Location::Host(rng.next_below(2) as usize)
                    };
                    let (id, _) = store.put(now, token, loc, bytes as f64, 1);
                    live.push((id, wf, bytes as f64));
                    total_bytes += bytes as f64;
                }
                Op::Resolve { node, wf } => {
                    if live.is_empty() { continue; }
                    let (id, owner_wf, bytes) = live[rng.next_below(live.len() as u64) as usize];
                    let token = AccessToken {
                        function: FunctionId(2),
                        workflow: WorkflowId(wf),
                    };
                    let res = store.resolve(now, node as usize, token, id);
                    if wf == owner_wf {
                        let (entry, _) = res.expect("owner resolves");
                        prop_assert_eq!(entry.bytes, bytes);
                    } else {
                        prop_assert!(res.is_err(), "cross-workflow access allowed");
                    }
                }
                Op::Consume => {
                    if live.is_empty() { continue; }
                    let idx = rng.next_below(live.len() as u64) as usize;
                    let (id, _, bytes) = live.swap_remove(idx);
                    prop_assert!(store.consumed(id), "single-consumer object must free");
                    total_bytes -= bytes;
                    prop_assert!(store.peek(id).is_none());
                }
                Op::Relocate { to_host } => {
                    if live.is_empty() { continue; }
                    let (id, _, _) = live[rng.next_below(live.len() as u64) as usize];
                    let loc = if to_host {
                        Location::Host(0)
                    } else {
                        Location::Gpu(GpuRef::new(0, 3))
                    };
                    store.relocate(id, loc).expect("live object relocates");
                    prop_assert_eq!(store.peek(id).expect("live").location, loc);
                }
                Op::NextUse { rank } => {
                    if live.is_empty() { continue; }
                    let (id, _, _) = live[rng.next_below(live.len() as u64) as usize];
                    store.set_next_use(id, Some(rank));
                    prop_assert_eq!(store.peek(id).expect("live").next_use, Some(rank));
                }
            }
            // Global invariants after every step.
            prop_assert_eq!(store.len(), live.len(), "object count drift");
            let mut sum = 0.0;
            for n in 0..2usize {
                sum += store.bytes_at(Location::Host(n));
            }
            for g in 0..8usize {
                sum += store.bytes_at(Location::Gpu(GpuRef::new(0, g)));
            }
            prop_assert!((sum - total_bytes).abs() < 1e-6, "byte accounting drift");
        }
    }
}
