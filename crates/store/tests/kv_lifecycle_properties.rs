//! Property tests over the append-mostly KV-block lifecycle (ISSUE 10): a
//! GPU pool and the metadata store driven through arbitrary interleavings of
//! block puts, in-place grows, consumes, migrations/restores and runtime
//! memory churn. The invariants mirror what `grouter-llm` relies on:
//!
//! * pool accounting never inverts — `0 ≤ used ≤ reserved ≤ capacity`
//!   after every operation, including forced eviction under runtime churn;
//! * pool demand always equals the byte sum of the GPU-resident blocks;
//! * migration is content-preserving — a block's recorded size never
//!   changes across any number of GPU↔host moves, only its location does.

use proptest::prelude::*;

use grouter_mem::{AllocError, ElasticPool, PoolDiscipline};
use grouter_sim::time::SimTime;
use grouter_store::{AccessToken, DataId, DataStore, FunctionId, Location, WorkflowId};
use grouter_topology::GpuRef;

const CAPACITY: f64 = 8e9;

#[derive(Clone, Debug)]
enum Op {
    /// Open a new KV block (lands on the GPU when the pool grants it,
    /// spills to host otherwise — the plane's put fallback).
    Put { bytes: u32 },
    /// Append tokens to an existing block in place.
    Grow { pick: usize, delta: u32 },
    /// Decode consumed the block (stream completed or was dropped).
    Consume { pick: usize },
    /// Migrate a resident block to host, or restore a host block to GPU.
    Migrate { pick: usize },
    /// Function execution claims a fraction of the GPU; overflow must be
    /// evicted, exactly as the plane's `on_memory_change` does.
    Runtime { permille: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..400_000_000).prop_map(|bytes| Op::Put { bytes }),
        (0usize..64, 1u32..40_000_000).prop_map(|(pick, delta)| Op::Grow { pick, delta }),
        (0usize..64).prop_map(|pick| Op::Consume { pick }),
        (0usize..64).prop_map(|pick| Op::Migrate { pick }),
        (0u16..900).prop_map(|permille| Op::Runtime { permille }),
    ]
}

/// Shadow model of one block: id, exact byte size, GPU residency.
#[derive(Clone, Debug)]
struct Block {
    id: DataId,
    bytes: f64,
    on_gpu: bool,
}

fn token() -> AccessToken {
    AccessToken {
        function: FunctionId(1),
        workflow: WorkflowId(1),
    }
}

fn gpu() -> Location {
    Location::Gpu(GpuRef::new(0, 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Interleaved grow/consume/migrate sequences never invert the pool's
    /// accounting chain and never corrupt a block's recorded size.
    #[test]
    fn kv_lifecycle_keeps_pool_and_store_coherent(
        ops in proptest::collection::vec(arb_op(), 1..120),
    ) {
        let now = SimTime::ZERO;
        let mut pool = ElasticPool::new(PoolDiscipline::Elastic, CAPACITY);
        let mut store = DataStore::new(1);
        let mut blocks: Vec<Block> = Vec::new();

        for op in ops {
            match op {
                Op::Put { bytes } => {
                    let bytes = bytes as f64;
                    let on_gpu = pool.try_alloc(bytes).is_ok();
                    let loc = if on_gpu { gpu() } else { Location::Host(0) };
                    let (id, _) = store.put(now, token(), loc, bytes, 1);
                    blocks.push(Block { id, bytes, on_gpu });
                }
                Op::Grow { pick, delta } => {
                    if blocks.is_empty() { continue; }
                    let idx = pick % blocks.len();
                    let b = &mut blocks[idx];
                    let delta = delta as f64;
                    // A resident block grows only with the pool's grant; a
                    // spilled block grows on host without pool accounting.
                    if b.on_gpu && pool.try_alloc(delta).is_err() {
                        continue;
                    }
                    let (total, _) = store.grow(now, b.id, delta).expect("live block grows");
                    b.bytes += delta;
                    prop_assert!(
                        (total - b.bytes).abs() < 1.0,
                        "grow returned {total}, model says {}",
                        b.bytes
                    );
                }
                Op::Consume { pick } => {
                    if blocks.is_empty() { continue; }
                    let idx = pick % blocks.len();
                    let b = blocks.swap_remove(idx);
                    prop_assert!(store.consumed(b.id), "single-consumer block must gc");
                    if b.on_gpu {
                        pool.free(b.bytes);
                    }
                }
                Op::Migrate { pick } => {
                    if blocks.is_empty() { continue; }
                    let idx = pick % blocks.len();
                    let b = &mut blocks[idx];
                    if b.on_gpu {
                        store.relocate(b.id, Location::Host(0)).expect("live block moves");
                        pool.free(b.bytes);
                        b.on_gpu = false;
                    } else if pool.try_alloc(b.bytes).is_ok() {
                        store.relocate(b.id, gpu()).expect("live block restores");
                        b.on_gpu = true;
                    }
                }
                Op::Runtime { permille } => {
                    let mut overflow =
                        pool.set_runtime_used(CAPACITY * permille as f64 / 1000.0);
                    // Evict resident blocks (front first) until the pool
                    // fits under its shrunken cap again.
                    let mut i = 0;
                    while overflow > 0.0 && i < blocks.len() {
                        if blocks[i].on_gpu {
                            let b = &mut blocks[i];
                            store.relocate(b.id, Location::Host(0)).expect("evictee moves");
                            pool.free(b.bytes);
                            b.on_gpu = false;
                            overflow -= b.bytes;
                        }
                        i += 1;
                    }
                }
            }

            // --- The accounting chain, after every single operation.
            prop_assert!(pool.used() >= 0.0, "negative demand");
            prop_assert!(
                pool.used() <= pool.reserved() + 1e-6,
                "demand {} above footprint {}",
                pool.used(),
                pool.reserved()
            );
            prop_assert!(
                pool.reserved() <= pool.capacity() + 1e-6,
                "footprint {} above capacity {}",
                pool.reserved(),
                pool.capacity()
            );

            // --- Pool demand is exactly the resident blocks' byte sum.
            let resident: f64 = blocks.iter().filter(|b| b.on_gpu).map(|b| b.bytes).sum();
            prop_assert!(
                (pool.used() - resident).abs() < 1.0,
                "pool says {} used, resident blocks sum to {resident}",
                pool.used()
            );

            // --- Migration preserved every block's bytes and residency.
            for b in &blocks {
                let entry = store.peek(b.id).expect("shadow block is live");
                prop_assert!(
                    (entry.bytes - b.bytes).abs() < 1.0,
                    "block {:?} holds {} bytes, model says {}",
                    b.id,
                    entry.bytes,
                    b.bytes
                );
                let loc_is_gpu = matches!(entry.location, Location::Gpu(_));
                prop_assert_eq!(loc_is_gpu, b.on_gpu, "residency diverged for {:?}", b.id);
            }
        }

        // Drain: consuming every surviving block leaves both sides empty.
        for b in blocks.drain(..) {
            prop_assert!(store.consumed(b.id));
            if b.on_gpu {
                pool.free(b.bytes);
            }
        }
        prop_assert_eq!(store.len(), 0, "store retained consumed blocks");
        prop_assert!(pool.used() == 0.0, "pool retained {} bytes", pool.used());
    }
}

/// `AllocError` is part of the contract the lifecycle leans on: a grow that
/// cannot fit reports the exact shortfall so the caller can size eviction.
#[test]
fn grow_shortfall_is_exact() {
    let mut pool = ElasticPool::new(PoolDiscipline::Elastic, 1e9);
    pool.try_alloc(pool.storage_cap()).expect("fill to the cap");
    match pool.try_alloc(64e6) {
        Err(AllocError::NeedsEviction { shortfall }) => {
            assert!((shortfall - 64e6).abs() < 1.0, "shortfall {shortfall}");
        }
        other => panic!("expected NeedsEviction, got {other:?}"),
    }
}
