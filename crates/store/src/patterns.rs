//! Data-passing pattern classification (paper §4.2.2).
//!
//! Given where the bytes live and where the consumer runs, [`classify`]
//! names the pattern; the data plane maps each pattern to a transfer
//! planner. This is the dispatch at the heart of the "unified" API: the
//! caller just says `Get(id)`.

use grouter_topology::GpuRef;

use crate::id::Location;

/// Consumer-side destination of a `Get`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Destination {
    /// A GPU function on this GPU.
    Gpu(GpuRef),
    /// A CPU function / host I/O on this node.
    Host(usize),
}

impl Destination {
    /// Node this destination lives on.
    pub fn node_of(&self) -> usize {
        match self {
            Destination::Gpu(g) => g.node,
            Destination::Host(n) => *n,
        }
    }
}

/// The heterogeneous data-passing patterns of §4.2.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataPassPattern {
    /// Producer and consumer share a GPU: address sharing, no copy.
    ZeroCopy,
    /// gFn–gFn on one node: NVLink (or PCIe P2P without NVLink).
    IntraNodeGpu { node: usize, src: usize, dst: usize },
    /// gFn–gFn across nodes: GPUDirect RDMA.
    CrossNodeGpu { src: GpuRef, dst: GpuRef },
    /// Host data consumed by a GPU function: PCIe host-to-device.
    HostToGpu { dst: GpuRef, src_node: usize },
    /// GPU data consumed on the host: PCIe device-to-host.
    GpuToHost { src: GpuRef, dst_node: usize },
    /// cFn–cFn on one node: shared memory.
    HostLocal { node: usize },
    /// Host-to-host across nodes: the network.
    HostCross { src_node: usize, dst_node: usize },
}

/// Classify the movement needed to satisfy a `Get`.
pub fn classify(data: Location, dest: Destination) -> DataPassPattern {
    match (data, dest) {
        (Location::Gpu(s), Destination::Gpu(d)) => {
            if s == d {
                DataPassPattern::ZeroCopy
            } else if s.node == d.node {
                DataPassPattern::IntraNodeGpu {
                    node: s.node,
                    src: s.gpu,
                    dst: d.gpu,
                }
            } else {
                DataPassPattern::CrossNodeGpu { src: s, dst: d }
            }
        }
        (Location::Host(n), Destination::Gpu(d)) => DataPassPattern::HostToGpu {
            dst: d,
            src_node: n,
        },
        (Location::Gpu(s), Destination::Host(n)) => DataPassPattern::GpuToHost {
            src: s,
            dst_node: n,
        },
        (Location::Host(s), Destination::Host(d)) => {
            if s == d {
                DataPassPattern::HostLocal { node: s }
            } else {
                DataPassPattern::HostCross {
                    src_node: s,
                    dst_node: d,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_every_pattern() {
        let g00 = GpuRef::new(0, 0);
        let g03 = GpuRef::new(0, 3);
        let g12 = GpuRef::new(1, 2);
        assert_eq!(
            classify(Location::Gpu(g00), Destination::Gpu(g00)),
            DataPassPattern::ZeroCopy
        );
        assert_eq!(
            classify(Location::Gpu(g00), Destination::Gpu(g03)),
            DataPassPattern::IntraNodeGpu {
                node: 0,
                src: 0,
                dst: 3
            }
        );
        assert_eq!(
            classify(Location::Gpu(g00), Destination::Gpu(g12)),
            DataPassPattern::CrossNodeGpu { src: g00, dst: g12 }
        );
        assert_eq!(
            classify(Location::Host(1), Destination::Gpu(g12)),
            DataPassPattern::HostToGpu {
                dst: g12,
                src_node: 1
            }
        );
        assert_eq!(
            classify(Location::Gpu(g03), Destination::Host(0)),
            DataPassPattern::GpuToHost {
                src: g03,
                dst_node: 0
            }
        );
        assert_eq!(
            classify(Location::Host(0), Destination::Host(0)),
            DataPassPattern::HostLocal { node: 0 }
        );
        assert_eq!(
            classify(Location::Host(0), Destination::Host(1)),
            DataPassPattern::HostCross {
                src_node: 0,
                dst_node: 1
            }
        );
    }

    #[test]
    fn same_gpu_index_on_different_nodes_is_cross_node() {
        let a = GpuRef::new(0, 5);
        let b = GpuRef::new(1, 5);
        assert!(matches!(
            classify(Location::Gpu(a), Destination::Gpu(b)),
            DataPassPattern::CrossNodeGpu { .. }
        ));
    }
}
