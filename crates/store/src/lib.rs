//! # grouter-store
//!
//! The *unified data-passing framework* of paper §4.2: globally unique data
//! identifiers, `Put`/`Get` metadata bookkeeping, hierarchical (local +
//! global) mapping tables, and the function/workflow access control of §7.
//!
//! This crate manages **metadata only** — which bytes live where and who may
//! touch them. Byte movement is planned by `grouter-transfer` and driven by
//! the runtime; the concrete *policy* (where a `Put` lands, which path a
//! `Get` takes) is what distinguishes GROUTER (`grouter` crate) from the
//! baselines (`grouter-baselines`).

pub mod api;
pub mod id;
pub mod patterns;
pub mod table;

pub use api::{DataStore, StoreError};
pub use id::{AccessToken, DataEntry, DataId, FunctionId, Location, WorkflowId};
pub use patterns::{classify, DataPassPattern};
pub use table::MappingTables;
