//! Identifiers, locations and access tokens.

use grouter_sim::time::SimTime;
use grouter_topology::GpuRef;

/// Globally unique identifier for one intermediate data object; returned by
/// `Put` and passed to downstream functions (§4.2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DataId(pub u64);

/// A deployed function instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FunctionId(pub u64);

/// A workflow invocation (one request flowing through a DAG).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WorkflowId(pub u64);

/// Where an object's bytes currently live.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Location {
    /// In a GPU storage pool.
    Gpu(GpuRef),
    /// In host memory of the given node (original placement or migrated).
    Host(usize),
}

impl Location {
    /// Node the bytes live on.
    pub fn node(&self) -> usize {
        match self {
            Location::Gpu(g) => g.node,
            Location::Host(n) => *n,
        }
    }

    pub fn is_gpu(&self) -> bool {
        matches!(self, Location::Gpu(_))
    }
}

/// Credentials a function presents on every store access (§7: "GROUTER
/// authenticates the requesting function using both function ID and workflow
/// ID on every access").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessToken {
    pub function: FunctionId,
    pub workflow: WorkflowId,
}

/// Store-side metadata for one object.
#[derive(Clone, Debug)]
pub struct DataEntry {
    pub id: DataId,
    pub bytes: f64,
    pub location: Location,
    /// The workflow the object belongs to; only its functions may access it.
    pub workflow: WorkflowId,
    /// The producing function.
    pub producer: FunctionId,
    pub created: SimTime,
    pub last_access: SimTime,
    /// Remaining consumers; the object is garbage once it reaches zero
    /// ("GROUTER promptly removes intermediate data that is no longer
    /// needed", §4.4.2).
    pub pending_consumers: u32,
    /// Queue rank of the earliest pending consumer (for queue-aware
    /// migration); `None` when unknown.
    pub next_use: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_accessors() {
        let gpu = Location::Gpu(GpuRef::new(2, 5));
        assert_eq!(gpu.node(), 2);
        assert!(gpu.is_gpu());
        let host = Location::Host(1);
        assert_eq!(host.node(), 1);
        assert!(!host.is_gpu());
    }
}
