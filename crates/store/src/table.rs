//! Hierarchical mapping tables (paper §4.2.2).
//!
//! "For scalability, each node maintains a local mapping table, while a
//! centralized scheduler holds a global table. Lookups and updates are first
//! served by the local table, falling back to the global table only on
//! misses." A local hit costs [`grouter_sim::params::LOCAL_TABLE_LOOKUP`];
//! a miss adds a [`grouter_sim::params::GLOBAL_TABLE_LOOKUP`] RPC, after
//! which the entry is cached locally (the §7 invocation-time metadata sync).

use grouter_sim::params;
use grouter_sim::time::SimDuration;

use crate::id::{DataEntry, DataId};

/// Dense bitset over data ids. [`DataId`]s are allocated by a monotone
/// counter, so id-indexed storage stays compact and every membership test
/// is one shift and mask instead of a tree walk.
#[derive(Debug, Clone, Default)]
struct IdBits(Vec<u64>);

impl IdBits {
    #[inline]
    fn contains(&self, id: u64) -> bool {
        let w = (id / 64) as usize;
        self.0
            .get(w)
            .is_some_and(|bits| bits & (1 << (id % 64)) != 0)
    }

    #[inline]
    fn insert(&mut self, id: u64) {
        let w = (id / 64) as usize;
        if w >= self.0.len() {
            self.0.resize(w + 1, 0);
        }
        self.0[w] |= 1 << (id % 64);
    }

    #[inline]
    fn remove(&mut self, id: u64) {
        let w = (id / 64) as usize;
        if let Some(bits) = self.0.get_mut(w) {
            *bits &= !(1 << (id % 64));
        }
    }

    /// Set bits in ascending order (audit/diagnostics only).
    #[cfg(feature = "audit")]
    fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64).filter_map(move |b| (bits & (1 << b) != 0).then_some(w as u64 * 64 + b))
        })
    }
}

/// Local per-node caches over one global table.
///
/// The global table is a slab indexed by data id with a sorted live-id list
/// for ordered iteration: ids are handed out monotonically, so inserts
/// append and the common lookup/update path is a direct slot access — this
/// sits under every `Get`/`Put` the runtime issues and was the last tree
/// walk on the macro-benchmark's hot path.
#[derive(Debug)]
pub struct MappingTables {
    /// `local[node]` = set of data ids whose entry is cached on that node.
    local: Vec<IdBits>,
    /// Slot per id ever issued; `None` after removal.
    global: Vec<Option<DataEntry>>,
    /// Live ids, ascending (iteration order of [`MappingTables::entries`]).
    live: Vec<DataId>,
    local_hits: u64,
    global_lookups: u64,
}

impl MappingTables {
    pub fn new(num_nodes: usize) -> MappingTables {
        assert!(num_nodes > 0, "need at least one node");
        MappingTables {
            local: vec![IdBits::default(); num_nodes],
            global: Vec::new(),
            live: Vec::new(),
            local_hits: 0,
            global_lookups: 0,
        }
    }

    #[inline]
    fn slot(&self, id: DataId) -> Option<&DataEntry> {
        self.global.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    /// Register a new entry; its metadata is immediately visible on the
    /// producing node and in the global table.
    pub fn insert(&mut self, entry: DataEntry) {
        let node = entry.location.node();
        let id = entry.id;
        self.local[node].insert(id.0);
        let idx = id.0 as usize;
        if idx >= self.global.len() {
            self.global.resize_with(idx + 1, || None);
        }
        if self.global[idx].replace(entry).is_none() {
            // Ids are monotone in practice, so this is a push.
            if let Err(pos) = self.live.binary_search(&id) {
                self.live.insert(pos, id);
            }
        }
        #[cfg(feature = "audit")]
        self.audit_tables();
    }

    /// `--features audit`: the hierarchical tables stay coherent — every
    /// locally cached id resolves in the global table (stale pointers are
    /// scrubbed only through `lookup`, never created by `insert`/`remove`),
    /// and every global entry's location names a known node.
    #[cfg(feature = "audit")]
    fn audit_tables(&self) {
        if !grouter_audit::every("store.tables", 16) {
            return;
        }
        grouter_audit::record_hit("store.tables");
        for (node, cache) in self.local.iter().enumerate() {
            for id in cache.iter() {
                grouter_audit::check("store.tables", self.slot(DataId(id)).is_some(), || {
                    format!("node {node} caches DataId({id}), absent from the global table")
                });
            }
        }
        for entry in self.entries() {
            grouter_audit::check(
                "store.tables",
                entry.location.node() < self.local.len(),
                || {
                    format!(
                        "{:?} located on out-of-range node {}",
                        entry.id,
                        entry.location.node()
                    )
                },
            );
        }
    }

    /// Look up `id` from `node`. Returns the entry (if any) and the control-
    /// plane latency of the lookup. A miss on the local table falls back to
    /// the global table and caches the result.
    pub fn lookup(&mut self, node: usize, id: DataId) -> (Option<&DataEntry>, SimDuration) {
        if self.local[node].contains(id.0) {
            self.local_hits += 1;
            // The cached pointer may be stale after removal; verify against
            // the global table (same node-local cost).
            if self.slot(id).is_some() {
                return (self.slot(id), params::LOCAL_TABLE_LOOKUP);
            }
            self.local[node].remove(id.0);
            return (None, params::LOCAL_TABLE_LOOKUP);
        }
        self.global_lookups += 1;
        let latency = params::LOCAL_TABLE_LOOKUP + params::GLOBAL_TABLE_LOOKUP;
        if self.slot(id).is_some() {
            self.local[node].insert(id.0);
            (self.slot(id), latency)
        } else {
            (None, latency)
        }
    }

    /// Mutable access to an entry (location updates, access stamps). Does not
    /// model latency: callers pair it with a prior `lookup`.
    pub fn get_mut(&mut self, id: DataId) -> Option<&mut DataEntry> {
        self.global.get_mut(id.0 as usize).and_then(|s| s.as_mut())
    }

    /// Read-only access without latency accounting (diagnostics, policies).
    pub fn peek(&self, id: DataId) -> Option<&DataEntry> {
        self.slot(id)
    }

    /// Remove an entry everywhere.
    pub fn remove(&mut self, id: DataId) -> Option<DataEntry> {
        for cache in &mut self.local {
            cache.remove(id.0);
        }
        let removed = self
            .global
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.take());
        if removed.is_some() {
            if let Ok(pos) = self.live.binary_search(&id) {
                self.live.remove(pos);
            }
        }
        #[cfg(feature = "audit")]
        self.audit_tables();
        removed
    }

    /// All live entries (deterministic id order).
    pub fn entries(&self) -> impl Iterator<Item = &DataEntry> {
        self.live.iter().filter_map(|id| self.slot(*id))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// (local hits, global lookups) — for the CPU-overhead report (Fig. 20b).
    pub fn lookup_stats(&self) -> (u64, u64) {
        (self.local_hits, self.global_lookups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{FunctionId, Location, WorkflowId};
    use grouter_sim::time::SimTime;
    use grouter_topology::GpuRef;

    fn entry(id: u64, node: usize) -> DataEntry {
        DataEntry {
            id: DataId(id),
            bytes: 1e6,
            location: Location::Gpu(GpuRef::new(node, 0)),
            workflow: WorkflowId(1),
            producer: FunctionId(1),
            created: SimTime::ZERO,
            last_access: SimTime::ZERO,
            pending_consumers: 1,
            next_use: None,
        }
    }

    #[test]
    fn local_hit_is_cheap() {
        let mut t = MappingTables::new(2);
        t.insert(entry(1, 0));
        let (found, lat) = t.lookup(0, DataId(1));
        assert!(found.is_some());
        assert_eq!(lat, params::LOCAL_TABLE_LOOKUP);
        assert_eq!(t.lookup_stats(), (1, 0));
    }

    #[test]
    fn remote_lookup_pays_global_rpc_then_caches() {
        let mut t = MappingTables::new(2);
        t.insert(entry(1, 0));
        let (found, lat) = t.lookup(1, DataId(1));
        assert!(found.is_some());
        assert_eq!(
            lat,
            params::LOCAL_TABLE_LOOKUP + params::GLOBAL_TABLE_LOOKUP
        );
        // Second lookup from node 1 hits the cache.
        let (_, lat2) = t.lookup(1, DataId(1));
        assert_eq!(lat2, params::LOCAL_TABLE_LOOKUP);
        assert_eq!(t.lookup_stats(), (1, 1));
    }

    #[test]
    fn missing_id_still_costs_a_global_lookup() {
        let mut t = MappingTables::new(1);
        let (found, lat) = t.lookup(0, DataId(42));
        assert!(found.is_none());
        assert_eq!(
            lat,
            params::LOCAL_TABLE_LOOKUP + params::GLOBAL_TABLE_LOOKUP
        );
    }

    #[test]
    fn removal_invalidates_caches() {
        let mut t = MappingTables::new(2);
        t.insert(entry(1, 0));
        t.lookup(1, DataId(1)); // cache on node 1
        t.remove(DataId(1));
        let (found, _) = t.lookup(1, DataId(1));
        assert!(found.is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn stale_local_pointer_degrades_gracefully() {
        let mut t = MappingTables::new(1);
        t.insert(entry(1, 0));
        // Simulate a stale cache: remove globally but re-add the pointer.
        t.remove(DataId(1));
        t.local[0].insert(1);
        let (found, lat) = t.lookup(0, DataId(1));
        assert!(found.is_none());
        assert_eq!(lat, params::LOCAL_TABLE_LOOKUP);
        // Stale pointer was scrubbed.
        assert!(!t.local[0].contains(1));
    }

    #[test]
    fn entries_iterate_in_id_order() {
        let mut t = MappingTables::new(1);
        t.insert(entry(3, 0));
        t.insert(entry(1, 0));
        t.insert(entry(2, 0));
        let ids: Vec<u64> = t.entries().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
