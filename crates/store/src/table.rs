//! Hierarchical mapping tables (paper §4.2.2).
//!
//! "For scalability, each node maintains a local mapping table, while a
//! centralized scheduler holds a global table. Lookups and updates are first
//! served by the local table, falling back to the global table only on
//! misses." A local hit costs [`grouter_sim::params::LOCAL_TABLE_LOOKUP`];
//! a miss adds a [`grouter_sim::params::GLOBAL_TABLE_LOOKUP`] RPC, after
//! which the entry is cached locally (the §7 invocation-time metadata sync).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use grouter_sim::params;
use grouter_sim::time::SimDuration;

use crate::id::{DataEntry, DataId};

/// Local per-node caches over one global table.
#[derive(Debug)]
pub struct MappingTables {
    /// `local[node]` = set of data ids whose entry is cached on that node.
    local: Vec<BTreeSet<DataId>>,
    global: BTreeMap<DataId, DataEntry>,
    local_hits: u64,
    global_lookups: u64,
}

impl MappingTables {
    pub fn new(num_nodes: usize) -> MappingTables {
        assert!(num_nodes > 0, "need at least one node");
        MappingTables {
            local: vec![BTreeSet::new(); num_nodes],
            global: BTreeMap::new(),
            local_hits: 0,
            global_lookups: 0,
        }
    }

    /// Register a new entry; its metadata is immediately visible on the
    /// producing node and in the global table.
    pub fn insert(&mut self, entry: DataEntry) {
        let node = entry.location.node();
        self.local[node].insert(entry.id);
        self.global.insert(entry.id, entry);
        #[cfg(feature = "audit")]
        self.audit_tables();
    }

    /// `--features audit`: the hierarchical tables stay coherent — every
    /// locally cached id resolves in the global table (stale pointers are
    /// scrubbed only through `lookup`, never created by `insert`/`remove`),
    /// and every global entry's location names a known node.
    #[cfg(feature = "audit")]
    fn audit_tables(&self) {
        if !grouter_audit::every("store.tables", 16) {
            return;
        }
        grouter_audit::record_hit("store.tables");
        for (node, cache) in self.local.iter().enumerate() {
            for id in cache {
                grouter_audit::check("store.tables", self.global.contains_key(id), || {
                    format!("node {node} caches {id:?}, absent from the global table")
                });
            }
        }
        for entry in self.global.values() {
            grouter_audit::check(
                "store.tables",
                entry.location.node() < self.local.len(),
                || {
                    format!(
                        "{:?} located on out-of-range node {}",
                        entry.id,
                        entry.location.node()
                    )
                },
            );
        }
    }

    /// Look up `id` from `node`. Returns the entry (if any) and the control-
    /// plane latency of the lookup. A miss on the local table falls back to
    /// the global table and caches the result.
    pub fn lookup(&mut self, node: usize, id: DataId) -> (Option<&DataEntry>, SimDuration) {
        if self.local[node].contains(&id) {
            self.local_hits += 1;
            // The cached pointer may be stale after removal; verify against
            // the global table (same node-local cost).
            if self.global.contains_key(&id) {
                return (self.global.get(&id), params::LOCAL_TABLE_LOOKUP);
            }
            self.local[node].remove(&id);
            return (None, params::LOCAL_TABLE_LOOKUP);
        }
        self.global_lookups += 1;
        let latency = params::LOCAL_TABLE_LOOKUP + params::GLOBAL_TABLE_LOOKUP;
        if self.global.contains_key(&id) {
            self.local[node].insert(id);
            (self.global.get(&id), latency)
        } else {
            (None, latency)
        }
    }

    /// Mutable access to an entry (location updates, access stamps). Does not
    /// model latency: callers pair it with a prior `lookup`.
    pub fn get_mut(&mut self, id: DataId) -> Option<&mut DataEntry> {
        self.global.get_mut(&id)
    }

    /// Read-only access without latency accounting (diagnostics, policies).
    pub fn peek(&self, id: DataId) -> Option<&DataEntry> {
        self.global.get(&id)
    }

    /// Remove an entry everywhere.
    pub fn remove(&mut self, id: DataId) -> Option<DataEntry> {
        for cache in &mut self.local {
            cache.remove(&id);
        }
        let removed = self.global.remove(&id);
        #[cfg(feature = "audit")]
        self.audit_tables();
        removed
    }

    /// All live entries (deterministic id order).
    pub fn entries(&self) -> impl Iterator<Item = &DataEntry> {
        self.global.values()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.global.len()
    }

    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }

    /// (local hits, global lookups) — for the CPU-overhead report (Fig. 20b).
    pub fn lookup_stats(&self) -> (u64, u64) {
        (self.local_hits, self.global_lookups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{FunctionId, Location, WorkflowId};
    use grouter_sim::time::SimTime;
    use grouter_topology::GpuRef;

    fn entry(id: u64, node: usize) -> DataEntry {
        DataEntry {
            id: DataId(id),
            bytes: 1e6,
            location: Location::Gpu(GpuRef::new(node, 0)),
            workflow: WorkflowId(1),
            producer: FunctionId(1),
            created: SimTime::ZERO,
            last_access: SimTime::ZERO,
            pending_consumers: 1,
            next_use: None,
        }
    }

    #[test]
    fn local_hit_is_cheap() {
        let mut t = MappingTables::new(2);
        t.insert(entry(1, 0));
        let (found, lat) = t.lookup(0, DataId(1));
        assert!(found.is_some());
        assert_eq!(lat, params::LOCAL_TABLE_LOOKUP);
        assert_eq!(t.lookup_stats(), (1, 0));
    }

    #[test]
    fn remote_lookup_pays_global_rpc_then_caches() {
        let mut t = MappingTables::new(2);
        t.insert(entry(1, 0));
        let (found, lat) = t.lookup(1, DataId(1));
        assert!(found.is_some());
        assert_eq!(
            lat,
            params::LOCAL_TABLE_LOOKUP + params::GLOBAL_TABLE_LOOKUP
        );
        // Second lookup from node 1 hits the cache.
        let (_, lat2) = t.lookup(1, DataId(1));
        assert_eq!(lat2, params::LOCAL_TABLE_LOOKUP);
        assert_eq!(t.lookup_stats(), (1, 1));
    }

    #[test]
    fn missing_id_still_costs_a_global_lookup() {
        let mut t = MappingTables::new(1);
        let (found, lat) = t.lookup(0, DataId(42));
        assert!(found.is_none());
        assert_eq!(
            lat,
            params::LOCAL_TABLE_LOOKUP + params::GLOBAL_TABLE_LOOKUP
        );
    }

    #[test]
    fn removal_invalidates_caches() {
        let mut t = MappingTables::new(2);
        t.insert(entry(1, 0));
        t.lookup(1, DataId(1)); // cache on node 1
        t.remove(DataId(1));
        let (found, _) = t.lookup(1, DataId(1));
        assert!(found.is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn stale_local_pointer_degrades_gracefully() {
        let mut t = MappingTables::new(1);
        t.insert(entry(1, 0));
        // Simulate a stale cache: remove globally but re-add the pointer.
        t.remove(DataId(1));
        t.local[0].insert(DataId(1));
        let (found, lat) = t.lookup(0, DataId(1));
        assert!(found.is_none());
        assert_eq!(lat, params::LOCAL_TABLE_LOOKUP);
        // Stale pointer was scrubbed.
        assert!(!t.local[0].contains(&DataId(1)));
    }

    #[test]
    fn entries_iterate_in_id_order() {
        let mut t = MappingTables::new(1);
        t.insert(entry(3, 0));
        t.insert(entry(1, 0));
        t.insert(entry(2, 0));
        let ids: Vec<u64> = t.entries().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
