//! The `Put`/`Get` metadata service.
//!
//! [`DataStore`] owns the mapping tables and enforces access control. Every
//! operation returns the control-plane latency it cost so the runtime can
//! charge it on the critical path. The store is policy-free: callers decide
//! *where* a `Put` lands — GROUTER picks the producer's GPU (locality),
//! NVSHMEM+ picks a random GPU, INFless+ picks host memory.

use grouter_sim::time::{SimDuration, SimTime};

use crate::id::{AccessToken, DataEntry, DataId, Location, WorkflowId};
use crate::table::MappingTables;

/// Store operation failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// No such object (expired, consumed, or never existed).
    UnknownData(DataId),
    /// The token's workflow does not own the object (§7 access control).
    AccessDenied {
        data: DataId,
        expected: WorkflowId,
        presented: WorkflowId,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownData(id) => write!(f, "unknown data {id:?}"),
            StoreError::AccessDenied {
                data,
                expected,
                presented,
            } => write!(
                f,
                "access denied for {data:?}: owned by {expected:?}, presented {presented:?}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// The metadata half of the unified data-passing framework.
#[derive(Debug)]
pub struct DataStore {
    tables: MappingTables,
    next_id: u64,
    /// Observability handle ([`DataStore::set_recorder`]); Put/Get/migrate
    /// instants are emitted when `Comp::Store` is enabled.
    rec: grouter_obs::Recorder,
}

impl DataStore {
    pub fn new(num_nodes: usize) -> DataStore {
        DataStore {
            tables: MappingTables::new(num_nodes),
            next_id: 0,
            rec: grouter_obs::Recorder::disabled(),
        }
    }

    /// Attach an observability recorder.
    pub fn set_recorder(&mut self, rec: grouter_obs::Recorder) {
        self.rec = rec;
    }

    fn emit_store_event(&self, name: &'static str, id: DataId, bytes: f64, location: Location) {
        self.rec.instant(
            grouter_obs::Comp::Store,
            name,
            grouter_obs::Ids::NONE,
            vec![
                ("data", id.0.into()),
                ("bytes", bytes.into()),
                ("loc", format!("{location:?}").into()),
            ],
        );
    }

    /// Register an object produced by `token.function` at `location`.
    /// Returns the new globally unique id and the control-plane latency.
    ///
    /// `pending_consumers` is the number of downstream functions that will
    /// `Get` the object (known from the workflow DAG at invocation time).
    pub fn put(
        &mut self,
        now: SimTime,
        token: AccessToken,
        location: Location,
        bytes: f64,
        pending_consumers: u32,
    ) -> (DataId, SimDuration) {
        let id = DataId(self.next_id);
        self.next_id += 1;
        self.tables.insert(DataEntry {
            id,
            bytes,
            location,
            workflow: token.workflow,
            producer: token.function,
            created: now,
            last_access: now,
            pending_consumers,
            next_use: None,
        });
        if self.rec.on(grouter_obs::Comp::Store) {
            self.emit_store_event("put", id, bytes, location);
            self.rec.count(grouter_obs::Comp::Store, "puts", 1);
            self.rec
                .sample(grouter_obs::Comp::Store, "put_bytes", bytes.max(0.0) as u64);
        }
        (id, grouter_sim::params::LOCAL_TABLE_LOOKUP)
    }

    /// Authenticate and resolve an object for a `Get` issued from `node`.
    /// On success returns a copy of the entry and the lookup latency; the
    /// access stamp is refreshed.
    pub fn resolve(
        &mut self,
        now: SimTime,
        node: usize,
        token: AccessToken,
        id: DataId,
    ) -> Result<(DataEntry, SimDuration), StoreError> {
        let (entry, latency) = self.tables.lookup(node, id);
        let Some(entry) = entry else {
            return Err(StoreError::UnknownData(id));
        };
        if entry.workflow != token.workflow {
            return Err(StoreError::AccessDenied {
                data: id,
                expected: entry.workflow,
                presented: token.workflow,
            });
        }
        let snapshot = entry.clone();
        if let Some(entry) = self.tables.get_mut(id) {
            entry.last_access = now;
        }
        if self.rec.on(grouter_obs::Comp::Store) {
            self.emit_store_event("get", id, snapshot.bytes, snapshot.location);
            self.rec.count(grouter_obs::Comp::Store, "gets", 1);
        }
        Ok((snapshot, latency))
    }

    /// Record that one consumer finished reading `id`. When the last
    /// consumer finishes the object is removed (prompt garbage collection,
    /// §4.4.2) and `true` is returned.
    pub fn consumed(&mut self, id: DataId) -> bool {
        let Some(entry) = self.tables.get_mut(id) else {
            return false;
        };
        entry.pending_consumers = entry.pending_consumers.saturating_sub(1);
        if entry.pending_consumers == 0 {
            self.tables.remove(id);
            true
        } else {
            false
        }
    }

    /// Add `n` future consumers to a live object. Recovery uses this when a
    /// stage that already consumed an input is reset: the retry will read the
    /// input again, so the earlier decrement must be compensated or the store
    /// garbage-collects the object one consume too early.
    pub fn add_pending(&mut self, id: DataId, n: u32) {
        if let Some(entry) = self.tables.get_mut(id) {
            entry.pending_consumers += n;
        }
    }

    /// Grow a live object in place by `delta` bytes (append-mostly KV-cache
    /// blocks, §6.4: decode extends the context one block group at a time
    /// while the object stays addressable). The caller owns the matching
    /// pool accounting at the object's current residency. Returns the new
    /// total size and the table-update latency.
    pub fn grow(
        &mut self,
        now: SimTime,
        id: DataId,
        delta: f64,
    ) -> Result<(f64, SimDuration), StoreError> {
        match self.tables.get_mut(id) {
            Some(entry) => {
                entry.bytes += delta.max(0.0);
                entry.last_access = now;
                let (bytes, location) = (entry.bytes, entry.location);
                if self.rec.on(grouter_obs::Comp::Store) {
                    self.emit_store_event("grow", id, bytes, location);
                    self.rec.count(grouter_obs::Comp::Store, "grows", 1);
                }
                Ok((bytes, grouter_sim::params::LOCAL_TABLE_LOOKUP))
            }
            None => Err(StoreError::UnknownData(id)),
        }
    }

    /// Update an object's location after migration/restoration.
    pub fn relocate(&mut self, id: DataId, location: Location) -> Result<(), StoreError> {
        match self.tables.get_mut(id) {
            Some(entry) => {
                entry.location = location;
                let bytes = entry.bytes;
                if self.rec.on(grouter_obs::Comp::Store) {
                    self.emit_store_event("migrate", id, bytes, location);
                    self.rec.count(grouter_obs::Comp::Store, "migrations", 1);
                }
                Ok(())
            }
            None => Err(StoreError::UnknownData(id)),
        }
    }

    /// Update the queue rank of the earliest pending consumer (queue-aware
    /// migration input).
    pub fn set_next_use(&mut self, id: DataId, rank: Option<u64>) {
        if let Some(entry) = self.tables.get_mut(id) {
            entry.next_use = rank;
        }
    }

    /// Forcibly remove `id` regardless of pending consumers (data destroyed
    /// by a GPU failure or an aborted transfer). Returns the entry so the
    /// caller can unwind pool/scaler accounting. Idempotent.
    pub fn purge(&mut self, id: DataId) -> Option<DataEntry> {
        let entry = self.tables.peek(id).cloned()?;
        self.tables.remove(id);
        Some(entry)
    }

    /// Forcibly remove every object resident at `location` (the data loss of
    /// a whole-GPU failure). Returns the purged entries in deterministic
    /// order; lineage recovery re-executes their producers as needed.
    pub fn purge_at(&mut self, location: Location) -> Vec<DataEntry> {
        let doomed = self.entries_at(location);
        for e in &doomed {
            self.tables.remove(e.id);
        }
        doomed
    }

    /// Objects currently resident on `location` (deterministic order).
    pub fn entries_at(&self, location: Location) -> Vec<DataEntry> {
        self.tables
            .entries()
            .filter(|e| e.location == location)
            .cloned()
            .collect()
    }

    /// Total bytes resident at `location`.
    pub fn bytes_at(&self, location: Location) -> f64 {
        self.tables
            .entries()
            .filter(|e| e.location == location)
            .map(|e| e.bytes)
            .sum()
    }

    /// Read an entry without authentication or latency (policies, tests).
    pub fn peek(&self, id: DataId) -> Option<&DataEntry> {
        self.tables.peek(id)
    }

    /// Live object count.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// (local hits, global lookups) forwarded from the tables.
    pub fn lookup_stats(&self) -> (u64, u64) {
        self.tables.lookup_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::FunctionId;
    use grouter_topology::GpuRef;

    fn token(func: u64, wf: u64) -> AccessToken {
        AccessToken {
            function: FunctionId(func),
            workflow: WorkflowId(wf),
        }
    }

    fn gpu(node: usize, g: usize) -> Location {
        Location::Gpu(GpuRef::new(node, g))
    }

    #[test]
    fn put_then_resolve_roundtrip() {
        let mut store = DataStore::new(2);
        let (id, _) = store.put(SimTime::ZERO, token(1, 10), gpu(0, 3), 5e6, 1);
        let (entry, _) = store.resolve(SimTime(100), 0, token(2, 10), id).unwrap();
        assert_eq!(entry.bytes, 5e6);
        assert_eq!(entry.location, gpu(0, 3));
        // Access stamp refreshed.
        assert_eq!(store.peek(id).unwrap().last_access, SimTime(100));
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut store = DataStore::new(1);
        let (a, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 1.0, 1);
        let (b, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 1.0, 1);
        assert!(b.0 > a.0);
    }

    #[test]
    fn cross_workflow_access_is_denied() {
        let mut store = DataStore::new(1);
        let (id, _) = store.put(SimTime::ZERO, token(1, 10), gpu(0, 0), 1e6, 1);
        let err = store
            .resolve(SimTime::ZERO, 0, token(5, 99), id)
            .unwrap_err();
        assert!(matches!(err, StoreError::AccessDenied { .. }));
    }

    #[test]
    fn unknown_data_reported() {
        let mut store = DataStore::new(1);
        let err = store
            .resolve(SimTime::ZERO, 0, token(1, 1), DataId(7))
            .unwrap_err();
        assert_eq!(err, StoreError::UnknownData(DataId(7)));
    }

    #[test]
    fn last_consumer_triggers_garbage_collection() {
        let mut store = DataStore::new(1);
        let (id, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 1e6, 2);
        assert!(!store.consumed(id), "one consumer left");
        assert!(store.consumed(id), "last consumer frees the object");
        assert!(store.is_empty());
        assert!(!store.consumed(id), "idempotent on missing objects");
    }

    #[test]
    fn grow_extends_a_live_object_in_place() {
        let mut store = DataStore::new(1);
        let (id, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 4e6, 1);
        let (total, _) = store.grow(SimTime(50), id, 1e6).unwrap();
        assert_eq!(total, 5e6);
        let entry = store.peek(id).unwrap();
        assert_eq!(entry.bytes, 5e6);
        assert_eq!(entry.location, gpu(0, 0), "grow never moves the object");
        assert_eq!(entry.last_access, SimTime(50), "grow refreshes the stamp");
        // Negative deltas are clamped: grow is append-only.
        let (total, _) = store.grow(SimTime(60), id, -3e6).unwrap();
        assert_eq!(total, 5e6);
        assert_eq!(
            store.grow(SimTime::ZERO, DataId(99), 1.0),
            Err(StoreError::UnknownData(DataId(99)))
        );
    }

    #[test]
    fn relocate_updates_location() {
        let mut store = DataStore::new(2);
        let (id, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 1e6, 1);
        store.relocate(id, Location::Host(0)).unwrap();
        assert_eq!(store.peek(id).unwrap().location, Location::Host(0));
        assert_eq!(
            store.relocate(DataId(99), Location::Host(0)),
            Err(StoreError::UnknownData(DataId(99)))
        );
    }

    #[test]
    fn entries_at_filters_by_location() {
        let mut store = DataStore::new(1);
        store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 1e6, 1);
        store.put(SimTime::ZERO, token(1, 1), gpu(0, 1), 2e6, 1);
        store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 3e6, 1);
        assert_eq!(store.entries_at(gpu(0, 0)).len(), 2);
        assert_eq!(store.bytes_at(gpu(0, 0)), 4e6);
        assert_eq!(store.bytes_at(gpu(0, 1)), 2e6);
        assert_eq!(store.bytes_at(Location::Host(0)), 0.0);
    }

    #[test]
    fn next_use_rank_is_settable() {
        let mut store = DataStore::new(1);
        let (id, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 1e6, 1);
        store.set_next_use(id, Some(3));
        assert_eq!(store.peek(id).unwrap().next_use, Some(3));
        store.set_next_use(id, None);
        assert_eq!(store.peek(id).unwrap().next_use, None);
    }

    #[test]
    fn purge_ignores_pending_consumers_and_is_idempotent() {
        let mut store = DataStore::new(1);
        let (id, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 5e6, 3);
        let entry = store.purge(id).expect("live entry purged");
        assert_eq!(entry.bytes, 5e6);
        assert_eq!(entry.pending_consumers, 3);
        assert!(store.is_empty());
        assert!(store.purge(id).is_none(), "second purge is a no-op");
        assert!(matches!(
            store.resolve(SimTime::ZERO, 0, token(1, 1), id),
            Err(StoreError::UnknownData(_))
        ));
    }

    #[test]
    fn purge_at_drops_exactly_the_failed_gpus_objects() {
        let mut store = DataStore::new(1);
        let (a, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 1e6, 1);
        let (b, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 1), 2e6, 1);
        let (c, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 3e6, 2);
        let lost = store.purge_at(gpu(0, 0));
        assert_eq!(
            lost.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![a, c],
            "deterministic id order"
        );
        assert!(store.peek(a).is_none());
        assert!(store.peek(c).is_none());
        assert_eq!(store.peek(b).unwrap().bytes, 2e6, "survivor untouched");
        assert!(store.purge_at(gpu(0, 0)).is_empty());
    }

    #[test]
    fn remote_resolve_is_slower_than_local() {
        let mut store = DataStore::new(2);
        let (id, _) = store.put(SimTime::ZERO, token(1, 1), gpu(0, 0), 1e6, 2);
        let (_, lat_remote) = store.resolve(SimTime::ZERO, 1, token(1, 1), id).unwrap();
        let (_, lat_local) = store.resolve(SimTime::ZERO, 0, token(1, 1), id).unwrap();
        assert!(lat_remote > lat_local);
    }
}
