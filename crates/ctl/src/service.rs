//! Service-mode cluster facade: a [`ClusterSim`] wired for router/worker
//! operation — the whole open-loop stream enters at the router group, every
//! group runs a heartbeat daemon, and [`HeartbeatRouter`] makes the
//! admission decisions from its stale view. Optional randomized
//! control-plane faults ([`FaultPlan::randomized_ctl`]) kill workers
//! mid-heartbeat-interval and drop heartbeats router-side.

use grouter_runtime::cluster::ClusterSim;
use grouter_runtime::simple_plane::LocalityPlane;
use grouter_sim::fault::{CtlFaultConfig, FaultPlan};
use grouter_sim::params;
use grouter_sim::shard::RunStats;
use grouter_sim::stats::Summary;
use grouter_sim::time::SimDuration;
use grouter_workloads::azure::ArrivalPattern;
use grouter_workloads::cluster::{service_setups, ClusterPreset, ROUTER_GROUP};

use crate::HeartbeatRouter;

/// Everything a service run needs beyond the fleet preset.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    pub pattern: ArrivalPattern,
    /// Offered load at the router gateway, requests/second.
    pub rps: f64,
    /// Total invocations in the trace.
    pub total: u64,
    pub seed: u64,
    /// Worker heartbeat period — the staleness knob.
    pub hb_interval: SimDuration,
    /// Randomized control-plane faults (worker deaths + heartbeat loss);
    /// `None` for a fault-free run.
    pub ctl_faults: Option<CtlFaultConfig>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            pattern: ArrivalPattern::Sporadic,
            rps: 400.0,
            total: 10_000,
            seed: 1,
            hb_interval: params::HEARTBEAT_INTERVAL,
            ctl_faults: None,
        }
    }
}

/// A running service cluster (router + workers over the sharded fabric).
pub struct ServiceSim {
    sim: ClusterSim,
}

impl ServiceSim {
    /// Build the cluster: service arrivals on the router group, heartbeat
    /// wiring everywhere, a [`HeartbeatRouter`] agent on the router, and
    /// per-group control-plane fault plans when configured.
    pub fn build(preset: &ClusterPreset, cfg: &ServiceConfig) -> ServiceSim {
        let mut setups = service_setups(
            preset,
            cfg.pattern,
            cfg.rps,
            cfg.total,
            cfg.seed,
            cfg.hb_interval,
            |_| Box::new(LocalityPlane::new()),
        );
        let n = setups.len() as u32;
        if let Some(fc) = &cfg.ctl_faults {
            let plans = FaultPlan::randomized_ctl(cfg.seed, n, ROUTER_GROUP, fc);
            for (g, plan) in plans.into_iter().enumerate() {
                if !plan.is_empty() {
                    setups[g].fault_plans.push(plan);
                }
            }
        }
        if let Some(router) = setups.get_mut(ROUTER_GROUP as usize) {
            router.agent = Some(Box::new(HeartbeatRouter::new(n, cfg.hb_interval)));
        }
        ServiceSim {
            sim: ClusterSim::new(cfg.seed, setups),
        }
    }

    /// Run to global quiescence on `threads` workers; byte-identical
    /// outputs for any thread count.
    pub fn run(&mut self, threads: usize) -> RunStats {
        self.sim.run(threads)
    }

    /// The underlying cluster (worlds, ports, merged reports).
    pub fn cluster(&self) -> &ClusterSim {
        &self.sim
    }

    pub fn arrivals(&self) -> u64 {
        self.sim.arrivals()
    }

    pub fn completed(&self) -> usize {
        self.sim.completed()
    }

    pub fn failed(&self) -> u64 {
        self.sim.failed()
    }

    /// Merged per-instance metrics CSV (deterministic group order).
    pub fn merged_csv(&self) -> String {
        self.sim.merged_csv()
    }

    /// Merged typed recovery log.
    pub fn merged_recovery_log(&self) -> String {
        self.sim.merged_recovery_log()
    }

    /// The router's admission log (empty when no agent is installed).
    pub fn admission_log(&self) -> String {
        self.sim.admission_log().unwrap_or_default()
    }

    /// Cluster-wide end-to-end latency distribution, milliseconds.
    pub fn latency_ms(&self) -> Summary {
        let mut s = Summary::new();
        for g in 0..self.sim.groups() {
            for r in self.sim.world(g).metrics.records() {
                s.record(r.latency().as_millis_f64());
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_preset() -> ClusterPreset {
        let mut p = ClusterPreset::uniform_64();
        p.groups.truncate(3);
        p
    }

    #[test]
    fn service_run_drains_and_routes_everywhere() {
        let cfg = ServiceConfig {
            total: 1_200,
            seed: 7,
            ..ServiceConfig::default()
        };
        let mut svc = ServiceSim::build(&small_preset(), &cfg);
        svc.run(1);
        assert_eq!(svc.arrivals(), 1_200);
        assert_eq!(svc.completed() as u64 + svc.failed(), 1_200);
        assert_eq!(svc.failed(), 0, "fault-free run completes everything");
        // The heartbeat view actually spreads load off the router group.
        let log = svc.admission_log();
        assert_eq!(log.lines().count(), 1_200);
        let remote = log.lines().filter(|l| !l.contains("-> g0")).count();
        assert!(remote > 0, "router never spread load:\n{log}");
        let (sent, recv, dropped) = svc.cluster().heartbeat_stats();
        assert!(sent > 0 && recv > 0);
        assert_eq!(dropped, 0);
        assert_eq!(sent, recv, "every beat survives a fault-free fabric");
    }

    #[test]
    fn same_seed_same_outputs_with_ctl_faults() {
        let cfg = ServiceConfig {
            total: 800,
            seed: 11,
            ctl_faults: Some(CtlFaultConfig::default()),
            ..ServiceConfig::default()
        };
        let run = |threads: usize| {
            let mut svc = ServiceSim::build(&small_preset(), &cfg);
            svc.run(threads);
            (
                svc.merged_csv(),
                svc.admission_log(),
                svc.merged_recovery_log(),
            )
        };
        let a = run(1);
        let b = run(2);
        assert_eq!(a.0, b.0, "metrics CSV differs across thread counts");
        assert_eq!(a.1, b.1, "admission log differs across thread counts");
        assert_eq!(a.2, b.2, "recovery log differs across thread counts");
        assert!(
            a.2.contains("WorkerDied"),
            "ctl plan injected no death:\n{}",
            a.2
        );
    }
}
