//! The heartbeat-view router: group-level admission from stale snapshots.
//!
//! The router's world model is one [`Heartbeat`] per group plus its own
//! routing history since that beat. Routing picks the group minimising
//! `(suspect, believed depth + routed-since, pool occupancy, index)` — a
//! deterministic total order, so the admission log is byte-identical for
//! any worker thread count.
//!
//! Failure detection is the classic 3×-interval timeout
//! ([`params::HEARTBEAT_SUSPECT_FACTOR`]): a group is *suspect* when it has
//! been silent longer than that **and** the router has a reason to expect
//! a beat (the group said it was active, or the router routed work to it
//! since the last beat). Idle groups disarm their daemon after a final
//! `active: false` beat and are never suspected. Every route to a
//! quiet group restarts its grace window, so a freshly woken worker has a
//! full detector timeout to report in before being shunned.

use std::fmt::Write as _;

use grouter_obs::{Comp, Ids, Recorder};
use grouter_runtime::{Heartbeat, RouterAgent};
use grouter_sim::params;
use grouter_sim::time::{SimDuration, SimTime};

/// What the router believes about one group.
#[derive(Clone, Debug)]
struct GroupView {
    /// Queue depth from the last surviving heartbeat.
    depth: u32,
    /// Requests routed there since that beat (the router's own stale-view
    /// correction: it counts what it sent even before the worker reports).
    routed_since: u32,
    /// When the router last heard from (or granted grace to) the group.
    last_contact: SimTime,
    /// The group's own claim from its last beat.
    active: bool,
    /// Mean pool-occupancy percentage from the last beat (placement
    /// tiebreak: prefer memory headroom).
    pool_pct: u32,
    /// Open observability span for the current suspect window (0 = none).
    suspect_span: u64,
}

impl GroupView {
    fn new() -> GroupView {
        GroupView {
            depth: 0,
            routed_since: 0,
            last_contact: SimTime::ZERO,
            active: false,
            pool_pct: 0,
            suspect_span: 0,
        }
    }
}

/// Heartbeat-view admission/placement policy (the service-mode router).
pub struct HeartbeatRouter {
    interval: SimDuration,
    view: Vec<GroupView>,
    log: String,
    /// Total requests routed.
    pub routed: u64,
}

impl HeartbeatRouter {
    /// A router for `groups` groups expecting beats every `interval`.
    pub fn new(groups: u32, interval: SimDuration) -> HeartbeatRouter {
        HeartbeatRouter {
            interval,
            view: (0..groups).map(|_| GroupView::new()).collect(),
            log: String::new(),
            routed: 0,
        }
    }

    /// The failure-detector verdict for group `g` at `now`.
    fn suspect(&self, g: usize, now: SimTime) -> bool {
        let v = &self.view[g];
        now.since(v.last_contact)
            > self
                .interval
                .saturating_mul(params::HEARTBEAT_SUSPECT_FACTOR)
            && (v.active || v.routed_since > 0)
    }
}

impl RouterAgent for HeartbeatRouter {
    fn on_heartbeat(&mut self, now: SimTime, src: u32, hb: &Heartbeat, rec: &Recorder) {
        let Some(v) = self.view.get_mut(src as usize) else {
            return;
        };
        v.depth = hb.depth;
        v.routed_since = 0;
        v.last_contact = now;
        v.active = hb.active;
        let n = hb.pool.len().max(1) as f64;
        let frac: f64 = hb.pool.iter().map(|p| p.fraction()).sum::<f64>() / n;
        v.pool_pct = (frac * 100.0).round() as u32;
        if v.suspect_span != 0 {
            // The suspect window closes: the group is alive after all.
            rec.end(v.suspect_span, vec![("recovered", true.into())]);
            v.suspect_span = 0;
        }
    }

    fn route(&mut self, now: SimTime, spec: u32, rec: &Recorder) -> u32 {
        let groups = self.view.len();
        let mut best: Option<(bool, u64, u32, usize)> = None;
        for g in 0..groups {
            let suspect = self.suspect(g, now);
            let v = &self.view[g];
            let key = (
                suspect,
                v.depth as u64 + v.routed_since as u64,
                v.pool_pct,
                g,
            );
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        // Span bookkeeping for suspect windows (no-ops under the default
        // trace mask; `end` happens in `on_heartbeat` when the group
        // resurfaces).
        for g in 0..groups {
            let suspect = self.suspect(g, now);
            let v = &mut self.view[g];
            if suspect && v.suspect_span == 0 {
                v.suspect_span =
                    rec.begin(Comp::Ctl, "suspect", Ids::NONE, vec![("group", g.into())]);
            }
        }
        let (suspect, eff, _, g) = best.unwrap_or((false, 0, 0, 0));
        let v = &mut self.view[g];
        if v.routed_since == 0 && v.last_contact < now {
            // First route since the group's last beat (or ever): grant a
            // fresh detector grace window.
            v.last_contact = now;
        }
        v.routed_since += 1;
        self.routed += 1;
        rec.instant(
            Comp::Ctl,
            "route",
            Ids::NONE,
            vec![("spec", spec.into()), ("group", g.into())],
        );
        // grouter-lint: allow(no-panic-in-dataplane): fmt::Write to String cannot fail
        writeln!(
            self.log,
            "{} spec={} -> g{} eff={} suspect={}",
            now.as_nanos(),
            spec,
            g,
            eff,
            u8::from(suspect)
        )
        .unwrap_or_default();
        g as u32
    }

    fn admission_log(&self) -> String {
        self.log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouter_mem::PoolOccupancy;

    fn beat(group: u32, seq: u64, at: SimTime, depth: u32, active: bool) -> Heartbeat {
        Heartbeat {
            group,
            seq,
            at,
            depth,
            gpu_load: vec![depth; 8],
            gpu_failed: vec![false; 8],
            pool: vec![PoolOccupancy::default(); 8],
            completed: 0,
            failed: 0,
            active,
        }
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn routes_to_least_loaded_group() {
        let rec = Recorder::disabled();
        let mut r = HeartbeatRouter::new(3, ms(50));
        let t = SimTime::ZERO + ms(10);
        r.on_heartbeat(t, 0, &beat(0, 0, t, 5, true), &rec);
        r.on_heartbeat(t, 1, &beat(1, 0, t, 1, true), &rec);
        r.on_heartbeat(t, 2, &beat(2, 0, t, 9, true), &rec);
        assert_eq!(r.route(t + ms(1), 0, &rec), 1);
        // Routed work counts against the believed depth immediately.
        assert_eq!(r.route(t + ms(2), 0, &rec), 1); // 1+1=2 still least
        assert_eq!(r.route(t + ms(3), 0, &rec), 1); // 1+2=3 still < 5
        assert_eq!(r.route(t + ms(4), 0, &rec), 1); // 1+3=4 still < 5
        assert_eq!(r.route(t + ms(5), 0, &rec), 0); // ties at 5 break low
    }

    #[test]
    fn silent_active_group_becomes_suspect_and_recovers() {
        let rec = Recorder::disabled();
        let mut r = HeartbeatRouter::new(2, ms(50));
        let t0 = SimTime::ZERO + ms(10);
        r.on_heartbeat(t0, 0, &beat(0, 0, t0, 3, true), &rec);
        r.on_heartbeat(t0, 1, &beat(1, 0, t0, 0, true), &rec);
        // Within the detector window the lighter group wins.
        assert_eq!(r.route(t0 + ms(20), 0, &rec), 1);
        // Group 0 keeps beating; group 1 goes silent past 3 intervals while
        // claiming active.
        r.on_heartbeat(t0 + ms(180), 0, &beat(0, 1, t0 + ms(180), 3, true), &rec);
        let late = t0 + ms(200);
        assert!(r.suspect(1, late));
        assert_eq!(r.route(late, 0, &rec), 0, "suspect group is shunned");
        // A fresh beat clears the suspicion.
        r.on_heartbeat(late + ms(1), 1, &beat(1, 1, late + ms(1), 0, true), &rec);
        assert!(!r.suspect(1, late + ms(2)));
        assert_eq!(r.route(late + ms(2), 0, &rec), 1);
    }

    #[test]
    fn idle_groups_are_never_suspected() {
        let rec = Recorder::disabled();
        let mut r = HeartbeatRouter::new(2, ms(50));
        let t0 = SimTime::ZERO + ms(10);
        // Group 1 signs off: final beat with active=false.
        r.on_heartbeat(t0, 1, &beat(1, 0, t0, 0, false), &rec);
        let late = t0 + ms(10_000);
        assert!(!r.suspect(1, late), "idle silence is not death");
        // Routing to it grants a grace window rather than instant suspicion.
        assert_eq!(
            r.route(late, 0, &rec),
            0,
            "never-seen g0 ties at 0 and breaks low"
        );
        assert_eq!(r.route(late, 1, &rec), 1);
        assert!(!r.suspect(1, late + ms(100)), "grace window from the route");
        assert!(r.suspect(1, late + ms(200)), "then the detector applies");
    }

    #[test]
    fn admission_log_records_every_route() {
        let rec = Recorder::disabled();
        let mut r = HeartbeatRouter::new(2, ms(50));
        let t = SimTime::ZERO + ms(1);
        r.route(t, 2, &rec);
        r.route(t + ms(1), 0, &rec);
        let log = r.admission_log();
        assert_eq!(log.lines().count(), 2);
        assert!(
            log.starts_with("1000000 spec=2 -> g0 eff=0 suspect=0\n"),
            "{log}"
        );
        assert_eq!(r.routed, 2);
    }
}
