//! Decode-aware admission for disaggregated LLM serving.
//!
//! The router only sees heartbeat snapshots of each serving group, so
//! admission is a *policy over stale views*: it must never deadlock on
//! staleness (an idle group is always admittable) while still deferring
//! requests that would pile KV on a group already saturated by live decode
//! state. This is the LLM analogue of [`crate::HeartbeatRouter`]'s drop
//! budget — but instead of CPU queue depth, the binding resource is **KV
//! bytes resident on decode GPUs**, which a new request holds for its whole
//! token stream.

/// What the router knows about one serving group, as of its last heartbeat.
#[derive(Clone, Copy, Debug)]
pub struct DecodeView {
    /// Requests currently streaming tokens (continuous-batch occupancy).
    pub active: u32,
    /// Live KV bytes resident across the group's decode GPUs.
    pub kv_bytes: f64,
    /// Requests admitted to the group but not yet streaming.
    pub queued: u32,
}

/// Per-group capacity the admission policy budgets against.
#[derive(Clone, Copy, Debug)]
pub struct DecodeBudget {
    /// Continuous-batch slots across the group's decode instances.
    pub max_active: u32,
    /// KV bytes the group can hold before pressure migration dominates.
    pub kv_soft_cap: f64,
}

/// Admission decision for one request against one group view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Send it: the group has batch slots and KV headroom.
    Admit,
    /// Hold it at the router until a fresher view shows headroom.
    Defer,
}

/// Decide whether a request expected to hold `kv_need` bytes of KV may be
/// admitted to a group in state `view` under `budget`.
///
/// Liveness rule: a group with **no** active or queued work is always
/// admittable, whatever the KV estimate says — otherwise a single oversized
/// request could starve forever against an empty cluster. Beyond that, the
/// policy defers when batch slots are exhausted (counting in-flight
/// admissions the view already knows about) or when the request would push
/// resident KV past the soft cap.
pub fn admit(view: DecodeView, budget: DecodeBudget, kv_need: f64) -> Admission {
    if view.active == 0 && view.queued == 0 {
        return Admission::Admit;
    }
    if view.active + view.queued >= budget.max_active {
        return Admission::Defer;
    }
    if view.kv_bytes + kv_need > budget.kv_soft_cap {
        return Admission::Defer;
    }
    Admission::Admit
}

/// Pick the group to admit to among `views` (one entry per serving group,
/// group order fixed): the admittable group with the most KV headroom,
/// ties to the lowest group index. Returns `None` when every group defers.
pub fn pick_group(views: &[DecodeView], budget: DecodeBudget, kv_need: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in views.iter().enumerate() {
        if admit(v, budget, kv_need) != Admission::Admit {
            continue;
        }
        let headroom = budget.kv_soft_cap - v.kv_bytes;
        match best {
            Some((_, h)) if headroom <= h => {}
            _ => best = Some((i, headroom)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: DecodeBudget = DecodeBudget {
        max_active: 4,
        kv_soft_cap: 10e9,
    };

    fn view(active: u32, kv: f64, queued: u32) -> DecodeView {
        DecodeView {
            active,
            kv_bytes: kv,
            queued,
        }
    }

    #[test]
    fn idle_group_always_admits() {
        // Even an absurd KV estimate admits against an idle group.
        assert_eq!(admit(view(0, 0.0, 0), BUDGET, 1e12), Admission::Admit);
    }

    #[test]
    fn batch_slots_and_kv_cap_defer() {
        assert_eq!(admit(view(4, 1e9, 0), BUDGET, 1e9), Admission::Defer);
        assert_eq!(admit(view(2, 1e9, 2), BUDGET, 1e9), Admission::Defer);
        assert_eq!(admit(view(1, 9.5e9, 0), BUDGET, 1e9), Admission::Defer);
        assert_eq!(admit(view(1, 1e9, 0), BUDGET, 1e9), Admission::Admit);
    }

    #[test]
    fn pick_group_prefers_kv_headroom_then_index() {
        let views = [view(1, 6e9, 0), view(1, 2e9, 0), view(1, 2e9, 0)];
        assert_eq!(pick_group(&views, BUDGET, 1e9), Some(1));
        let full = [view(4, 1e9, 0), view(2, 9.9e9, 0)];
        assert_eq!(pick_group(&full, BUDGET, 1e9), None);
        // An idle group rescues an otherwise-full cluster.
        let rescued = [view(4, 1e9, 0), view(0, 0.0, 0)];
        assert_eq!(pick_group(&rescued, BUDGET, 1e9), Some(1));
    }
}
