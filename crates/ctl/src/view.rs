//! GPU-level placement from a heartbeat-reconstructed view.
//!
//! [`ViewPlacer`] mirrors the Mapa arm of [`grouter_runtime::Placer`]
//! exactly — same scan ([`mapa_scan`]), same CPU-stage rotation, same load
//! bookkeeping — but its load/failure vectors come from worker heartbeats
//! ([`ViewPlacer::sync`]) rather than the world's live counters. The
//! placement-oracle test proves that with a perfectly fresh view the two
//! make identical decisions on every testbed; whatever gap service mode
//! shows is therefore *staleness*, not a different policy.

use grouter_runtime::dataplane::Destination;
use grouter_runtime::placement::mapa_scan;
use grouter_runtime::spec::WorkflowSpec;
use grouter_topology::Topology;

/// MAPA placement over a reconstructed (possibly stale) per-GPU view.
#[derive(Clone, Debug)]
pub struct ViewPlacer {
    /// Believed outstanding stage count per flat GPU index.
    load: Vec<u32>,
    /// Believed failure flags per flat GPU index.
    failed: Vec<bool>,
    /// Round-robin cursor for root CPU stages (mirrors `Placer`).
    cpu_rr: usize,
    /// Nodes eligible for placement.
    nodes: Vec<usize>,
}

impl ViewPlacer {
    pub fn new(topo: &Topology, nodes: Vec<usize>) -> ViewPlacer {
        ViewPlacer {
            load: vec![0; topo.num_gpus()],
            failed: vec![false; topo.num_gpus()],
            cpu_rr: 0,
            nodes,
        }
    }

    /// Replace the believed view with a heartbeat snapshot. With the
    /// omniscient vectors this makes the next [`ViewPlacer::place`]
    /// decision-identical to `Placer::place`.
    pub fn sync(&mut self, load: &[u32], failed: &[bool]) {
        self.load.clear();
        self.load.extend_from_slice(load);
        self.failed.clear();
        self.failed.extend_from_slice(failed);
    }

    /// Believed load vector (updated locally between syncs).
    pub fn load(&self) -> &[u32] {
        &self.load
    }

    /// Place all stages of one workflow instance — the Mapa arm of
    /// `Placer::place`, verbatim, against the believed view.
    pub fn place(&mut self, topo: &Topology, spec: &WorkflowSpec) -> Vec<Destination> {
        let mut out: Vec<Destination> = Vec::with_capacity(spec.stages.len());
        for (i, stage) in spec.stages.iter().enumerate() {
            if stage.is_gpu() {
                let gpu = mapa_scan(
                    topo,
                    &self.nodes,
                    &self.load,
                    &self.failed,
                    &spec.stages[i].deps,
                    &out,
                );
                out.push(Destination::Gpu(gpu));
            } else {
                let node = spec.stages[i]
                    .deps
                    .iter()
                    .map(|&d| match out[d] {
                        Destination::Gpu(g) => g.node,
                        Destination::Host(n) => n,
                    })
                    .next()
                    .unwrap_or_else(|| {
                        let n = self.nodes[self.cpu_rr % self.nodes.len()];
                        self.cpu_rr += 1;
                        n
                    });
                out.push(Destination::Host(node));
            }
        }
        for dest in &out {
            if let Destination::Gpu(g) = dest {
                self.load[topo.flat_index(g.node, g.gpu)] += 1;
            }
        }
        out
    }

    /// A stage finished: decrement the believed load (mirrors
    /// `Placer::release`).
    pub fn release(&mut self, topo: &Topology, dest: Destination) {
        if let Destination::Gpu(g) = dest {
            let idx = topo.flat_index(g.node, g.gpu);
            self.load[idx] = self.load[idx].saturating_sub(1);
        }
    }

    /// Mark a GPU (flat index) down or up in the believed view.
    pub fn set_failed(&mut self, idx: usize, failed: bool) {
        self.failed[idx] = failed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouter_runtime::spec::StageSpec;
    use grouter_sim::time::SimDuration;
    use grouter_sim::FlowNet;
    use grouter_topology::presets;

    fn chain(n: usize) -> WorkflowSpec {
        let mut wf = WorkflowSpec::new("chain", 1e6);
        for i in 0..n {
            let deps = if i == 0 { vec![] } else { vec![i - 1] };
            wf.push(StageSpec::gpu(
                format!("s{i}"),
                deps,
                SimDuration::from_millis(10),
                1e6,
                1e9,
            ));
        }
        wf
    }

    #[test]
    fn stale_failure_flag_places_onto_a_dead_gpu() {
        // The point of the view: it can be wrong. A failed GPU the router
        // has not heard about yet still receives placements.
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
        let mut view = ViewPlacer::new(&topo, vec![0]);
        let placed = view.place(&topo, &chain(1));
        let Destination::Gpu(first) = placed[0] else {
            panic!("gpu stage");
        };
        // Omniscient truth: that GPU just died. The un-synced view repeats
        // the decision; after a sync it avoids the GPU.
        let mut failed = vec![false; topo.num_gpus()];
        failed[topo.flat_index(first.node, first.gpu)] = true;
        let mut stale = ViewPlacer::new(&topo, vec![0]);
        let again = stale.place(&topo, &chain(1));
        assert_eq!(again[0], placed[0], "stale view repeats the bad pick");
        let mut synced = ViewPlacer::new(&topo, vec![0]);
        synced.sync(&vec![0; topo.num_gpus()], &failed);
        let fresh = synced.place(&topo, &chain(1));
        assert_ne!(fresh[0], placed[0], "synced view avoids the dead GPU");
    }

    #[test]
    fn release_is_saturating() {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
        let mut view = ViewPlacer::new(&topo, vec![0]);
        view.release(&topo, Destination::Gpu(grouter_topology::GpuRef::new(0, 3)));
        assert!(view.load().iter().all(|&l| l == 0));
    }
}
