//! Service-mode control plane (`grouter-ctl`).
//!
//! The cluster runtime (`grouter_runtime::cluster`) provides the
//! *mechanism* of service mode: worker heartbeats riding the sharded
//! frontend fabric, router-side drop budgets, and a [`RouterAgent`] hook
//! consulted on every admitted request. This crate provides the *policy*:
//!
//! * [`HeartbeatRouter`] — the heartbeat-view scheduler. Its entire
//!   knowledge of the cluster is the last surviving snapshot per group
//!   plus its own routing history; between beats the view is stale by
//!   construction, and a classic 3×-interval failure detector marks silent
//!   busy groups suspect ([`grouter_sim::params::HEARTBEAT_SUSPECT_FACTOR`]).
//! * [`ViewPlacer`] — the GPU-level MAPA scan run against a
//!   heartbeat-reconstructed load vector instead of the omniscient
//!   [`grouter_runtime::Placer`] counters. Both call the *same*
//!   [`grouter_runtime::mapa_scan`] kernel, so the placement-oracle test
//!   can prove the zero-staleness view is decision-identical to the
//!   omniscient scheduler.
//! * [`ServiceSim`] — a [`grouter_runtime::ClusterSim`] wired for service
//!   mode: one open-loop stream entering at the router group, heartbeat
//!   daemons on every group, optional randomized control-plane faults
//!   ([`grouter_sim::fault::FaultPlan::randomized_ctl`]).
//!
//! Everything here runs inside the router group's deterministic event
//! dispatch: same seed ⇒ byte-identical admission log, metrics CSV and
//! recovery log on 1, 2 or 8 worker threads (pinned by the golden and
//! sharded suites).

pub mod admission;
pub mod router;
pub mod service;
pub mod view;

pub use admission::{admit, pick_group, Admission, DecodeBudget, DecodeView};
pub use router::HeartbeatRouter;
pub use service::{ServiceConfig, ServiceSim};
pub use view::ViewPlacer;
