//! Placement oracle: the heartbeat-view scheduler against the omniscient
//! MAPA scan.
//!
//! **Zero staleness ⇒ identity.** A [`ViewPlacer`] synced from the
//! omniscient [`Placer`]'s live load/failure vectors immediately before
//! every placement must make *exactly* the same decision for every stage
//! of every workflow, across randomized arrival/release/fault scripts, on
//! both testbeds (dgx_v100 and dgx_a100). Both sides call the same
//! [`grouter_runtime::mapa_scan`] kernel, so any divergence is a bug in
//! the view reconstruction, not a policy difference.
//!
//! **Bounded staleness ⇒ bounded degradation.** A service run whose
//! router sees 50×-staler heartbeats (and suffers control-plane faults)
//! may complete fewer requests at a worse p99, but the gap is pinned:
//! regressions past the pinned factors mean the failure detector or the
//! routed-since correction broke.

use grouter_ctl::{ServiceConfig, ServiceSim, ViewPlacer};
use grouter_runtime::dataplane::Destination;
use grouter_runtime::spec::{StageSpec, WorkflowSpec};
use grouter_runtime::{PlacementPolicy, Placer};
use grouter_sim::fault::CtlFaultConfig;
use grouter_sim::rng::DetRng;
use grouter_sim::time::SimDuration;
use grouter_sim::FlowNet;
use grouter_topology::graph::TopologySpec;
use grouter_topology::{presets, Topology};
use grouter_workloads::cluster::ClusterPreset;
use proptest::prelude::*;

/// The workflow shapes the script draws from: a GPU chain, a fan-out/
/// fan-in diamond, and a CPU-rooted pipeline (exercises the root-CPU
/// round-robin cursor both sides must keep in lockstep).
fn spec_library() -> Vec<WorkflowSpec> {
    let ms = SimDuration::from_millis;
    let mut chain = WorkflowSpec::new("chain", 1e6);
    for i in 0..4 {
        let deps = if i == 0 { vec![] } else { vec![i - 1] };
        chain.push(StageSpec::gpu(format!("c{i}"), deps, ms(10), 1e6, 2e9));
    }
    let mut diamond = WorkflowSpec::new("diamond", 5e5);
    diamond.push(StageSpec::gpu("root", vec![], ms(5), 1e6, 1e9));
    diamond.push(StageSpec::gpu("left", vec![0], ms(8), 5e5, 1e9));
    diamond.push(StageSpec::gpu("right", vec![0], ms(8), 5e5, 1e9));
    diamond.push(StageSpec::gpu("join", vec![1, 2], ms(4), 1e5, 1e9));
    let mut piped = WorkflowSpec::new("piped", 2e6);
    piped.push(StageSpec::cpu("pre", vec![], ms(2), 2e6));
    piped.push(StageSpec::gpu("infer", vec![0], ms(15), 1e6, 4e9));
    piped.push(StageSpec::cpu("post", vec![1], ms(1), 1e4));
    vec![chain, diamond, piped]
}

/// One scripted control-plane event. Indices resolve modulo the live
/// sets, so any script is meaningful in any interleaving.
#[derive(Clone, Debug)]
enum Op {
    /// Admit one instance of `spec_library()[i % 3]`.
    Place(usize),
    /// Retire one outstanding GPU stage (omniscient release).
    Release(usize),
    /// Fail a GPU (flat index, modulo the testbed size).
    Fail(usize),
    /// Restore a GPU likewise.
    Restore(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64).prop_map(Op::Place),
        (0usize..64).prop_map(Op::Place),
        (0usize..64).prop_map(Op::Release),
        (0usize..64).prop_map(Op::Fail),
        (0usize..64).prop_map(Op::Restore),
    ]
}

fn arb_scenario() -> impl Strategy<Value = (usize, Vec<Op>)> {
    // testbed 0 = dgx_v100, 1 = dgx_a100; two nodes each.
    (0usize..2, proptest::collection::vec(arb_op(), 1..60))
}

fn testbed(which: usize) -> TopologySpec {
    if which == 0 {
        presets::dgx_v100()
    } else {
        presets::dgx_a100()
    }
}

/// Drive the omniscient placer and a per-place-synced view through one
/// script, asserting decision identity at every placement.
fn run_identity(which: usize, ops: &[Op]) -> Result<(), String> {
    let mut net = FlowNet::new();
    let topo = Topology::build(testbed(which), 2, &mut net);
    let nodes = vec![0, 1];
    let mut placer = Placer::new(PlacementPolicy::Mapa, &topo, nodes.clone());
    let mut view = ViewPlacer::new(&topo, nodes);
    let mut rng = DetRng::new(0x07AC1E);
    let specs = spec_library();
    // Outstanding GPU stages the Release op can retire.
    let mut outstanding: Vec<Destination> = Vec::new();
    for op in ops {
        match op {
            Op::Place(i) => {
                let spec = &specs[i % specs.len()];
                // The zero-staleness premise: the heartbeat arrived *now*.
                view.sync(placer.load(), placer.failed_mask());
                let want = placer.place(&topo, spec, &mut rng);
                let got = view.place(&topo, spec);
                prop_assert_eq!(
                    &got,
                    &want,
                    "fresh view diverged from omniscient MAPA on testbed {} for {}",
                    which,
                    spec.name
                );
                prop_assert_eq!(
                    view.load(),
                    placer.load(),
                    "post-place load bookkeeping diverged"
                );
                outstanding.extend(want.iter().filter(|d| matches!(d, Destination::Gpu(_))));
            }
            Op::Release(i) => {
                if outstanding.is_empty() {
                    continue;
                }
                let dest = outstanding.remove(i % outstanding.len());
                placer.release(&topo, dest);
            }
            Op::Fail(i) => placer.set_failed(i % topo.num_gpus(), true),
            Op::Restore(i) => placer.set_failed(i % topo.num_gpus(), false),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Zero staleness ⇒ the heartbeat-view placement is byte-identical to
    /// the omniscient scan on every testbed, under arrivals, releases and
    /// GPU fail/restore churn.
    #[test]
    fn fresh_view_is_decision_identical_to_omniscient((which, ops) in arb_scenario()) {
        run_identity(which, &ops)?;
    }
}

/// A deterministic spot-check of the same identity (fast path for CI,
/// and a fixed anchor independent of proptest's RNG).
#[test]
fn fresh_view_identity_fixed_script() {
    let ops: Vec<Op> = (0..48)
        .map(|i| match i % 7 {
            0 | 1 | 4 => Op::Place(i),
            2 | 5 => Op::Release(i / 2),
            3 => Op::Fail(i),
            _ => Op::Restore(i / 3),
        })
        .collect();
    for which in 0..2 {
        run_identity(which, &ops).expect("identity must hold on the fixed script");
    }
}

fn small_preset() -> ClusterPreset {
    let mut p = ClusterPreset::uniform_64();
    p.groups.truncate(4);
    p
}

fn service_run(hb_millis: u64) -> (u64, f64) {
    let cfg = ServiceConfig {
        total: 3_000,
        seed: 0xDE6,
        hb_interval: SimDuration::from_millis(hb_millis),
        ctl_faults: Some(CtlFaultConfig::default()),
        ..ServiceConfig::default()
    };
    let mut svc = ServiceSim::build(&small_preset(), &cfg);
    svc.run(2);
    assert_eq!(
        svc.completed() as u64 + svc.failed(),
        svc.arrivals(),
        "service run must account for every arrival"
    );
    (svc.completed() as u64, svc.latency_ms().p99())
}

/// Bounded staleness ⇒ bounded degradation: with 50×-staler heartbeats
/// under the same randomized control-plane fault plan, the router may
/// lose some completions and latency, but within pinned factors.
#[test]
fn stale_view_degradation_is_bounded() {
    let (fresh_done, fresh_p99) = service_run(5);
    let (stale_done, stale_p99) = service_run(250);
    // Completed count: the stale router must still finish the vast
    // majority of what the fresh router finishes.
    assert!(
        stale_done * 10 >= fresh_done * 9,
        "stale completions {stale_done} fell below 90% of fresh {fresh_done}"
    );
    // p99 latency: staleness may cost tail latency, but not an order of
    // magnitude.
    assert!(
        stale_p99 <= fresh_p99 * 8.0,
        "stale p99 {stale_p99}ms exceeds 8x fresh p99 {fresh_p99}ms"
    );
}
