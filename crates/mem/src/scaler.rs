//! Histogram-based pool pre-warming (paper §4.4.1, Fig. 11a).
//!
//! For each function the scaler tracks sliding-window 99th percentiles of:
//!
//! * `R_window` — request inter-arrival time: how long after the last
//!   request memory should stay reserved;
//! * `R_size` — intermediate (output) data size;
//! * `R_con` — data accumulation / concurrency in the store.
//!
//! After each execution the function's share of the pool is
//! `Data_size = R_size · R_con`, held while `now < last_request + R_window`;
//! the total target is the sum over currently active functions
//! (`MemPool_size = Σ Data_size · 1{window overlaps now}`), floored at the
//! minimum pool.

use std::collections::BTreeMap;

use grouter_sim::params;
use grouter_sim::stats::WindowedPercentile;
use grouter_sim::time::SimTime;

/// Samples remembered per function per signal.
const WINDOW: usize = 256;

#[derive(Debug)]
struct FuncStats {
    interval_s: WindowedPercentile,
    size_bytes: WindowedPercentile,
    concurrency: WindowedPercentile,
    last_request: Option<SimTime>,
    live_outputs: u32,
}

impl FuncStats {
    fn new() -> FuncStats {
        FuncStats {
            interval_s: WindowedPercentile::new(WINDOW),
            size_bytes: WindowedPercentile::new(WINDOW),
            concurrency: WindowedPercentile::new(WINDOW),
            last_request: None,
            live_outputs: 0,
        }
    }

    /// `R_size · R_con` — the reservation while the function is active.
    fn reservation(&mut self) -> f64 {
        let size = self.size_bytes.p99().unwrap_or(0.0);
        let con = self.concurrency.p99().unwrap_or(1.0).max(1.0);
        size * con
    }

    /// `R_window` in seconds; a conservative default before any history.
    fn window_s(&mut self) -> f64 {
        self.interval_s.p99().unwrap_or(1.0)
    }

    fn active_at(&mut self, now: SimTime) -> bool {
        match self.last_request {
            None => false,
            Some(last) => (now - last.min(now)).as_secs_f64() <= self.window_s(),
        }
    }
}

/// Per-GPU pre-warm estimator across all functions that store data there.
#[derive(Debug, Default)]
pub struct PrewarmScaler {
    funcs: BTreeMap<u64, FuncStats>,
}

impl PrewarmScaler {
    pub fn new() -> PrewarmScaler {
        Self::default()
    }

    fn entry(&mut self, func: u64) -> &mut FuncStats {
        self.funcs.entry(func).or_insert_with(FuncStats::new)
    }

    /// Record a request arrival for `func` (feeds `R_window`).
    pub fn on_request(&mut self, func: u64, now: SimTime) {
        let stats = self.entry(func);
        if let Some(last) = stats.last_request {
            stats.interval_s.record((now - last.min(now)).as_secs_f64());
        }
        stats.last_request = Some(now);
    }

    /// Record that `func` produced an output of `bytes` (feeds `R_size` and,
    /// via the live-output count, `R_con`).
    pub fn on_output(&mut self, func: u64, bytes: f64) {
        let stats = self.entry(func);
        stats.size_bytes.record(bytes);
        stats.live_outputs += 1;
        let live = stats.live_outputs;
        stats.concurrency.record(live as f64);
    }

    /// Record that one of `func`'s outputs was consumed/deleted.
    pub fn on_consumed(&mut self, func: u64) {
        let stats = self.entry(func);
        stats.live_outputs = stats.live_outputs.saturating_sub(1);
    }

    /// The pool size the GPU should hold at `now`:
    /// `max(Σ_active R_size·R_con, MIN_POOL_BYTES)`.
    pub fn target_bytes(&mut self, now: SimTime) -> f64 {
        let mut demand = 0.0;
        for s in self.funcs.values_mut() {
            if s.active_at(now) {
                demand += s.reservation();
            }
        }
        let target = demand.max(params::MIN_POOL_BYTES);
        #[cfg(feature = "audit")]
        grouter_audit::check(
            "scaler.floor",
            target.is_finite() && target >= params::MIN_POOL_BYTES,
            || format!("pre-warm target {target} violates the 300 MB floor"),
        );
        target
    }

    /// Reservation window for one function, if known (testing/diagnostics).
    pub fn window_secs(&mut self, func: u64) -> Option<f64> {
        self.funcs.get_mut(&func).map(|s| s.window_s())
    }

    /// Outstanding (produced but unconsumed) outputs currently counted for
    /// `func` (testing/diagnostics). Every `on_output` must eventually be
    /// balanced by an `on_consumed`, or the concurrency p99 ratchets up and
    /// the pre-warm target over-reserves.
    pub fn live_outputs(&self, func: u64) -> u32 {
        self.funcs.get(&func).map(|s| s.live_outputs).unwrap_or(0)
    }

    /// Total outstanding outputs across every tracked function — the leak
    /// indicator chaos tests assert drains to zero.
    pub fn total_live_outputs(&self) -> u64 {
        self.funcs.values().map(|s| s.live_outputs as u64).sum()
    }

    /// Drop every reservation this GPU's scaler holds: the GPU failed, its
    /// stored outputs are gone, and keeping their histograms would inflate
    /// the pre-warm target of the (empty) pool when the GPU rejoins. The
    /// scaler restarts with no history, exactly as at boot.
    pub fn quarantine(&mut self) {
        self.funcs.clear();
    }

    /// Number of tracked functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouter_sim::time::SimDuration;

    const MB: f64 = 1e6;

    #[test]
    fn empty_scaler_targets_the_floor() {
        let mut s = PrewarmScaler::new();
        assert_eq!(s.target_bytes(SimTime::ZERO), params::MIN_POOL_BYTES);
    }

    #[test]
    fn active_function_reserves_size_times_concurrency() {
        let mut s = PrewarmScaler::new();
        let mut t = SimTime::ZERO;
        // Steady 100 ms arrivals, 200 MB outputs, concurrency up to 4.
        for i in 0..100 {
            t += SimDuration::from_millis(100);
            s.on_request(7, t);
            s.on_output(7, 200.0 * MB);
            if i % 4 == 3 {
                for _ in 0..4 {
                    s.on_consumed(7);
                }
            }
        }
        // Right after a request the function is active: target ≈ 200 MB × 4.
        let target = s.target_bytes(t);
        assert!(
            (target - 800.0 * MB).abs() < 1.0,
            "target {target} vs expected 800 MB"
        );
    }

    #[test]
    fn window_expiry_releases_reservation() {
        let mut s = PrewarmScaler::new();
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            t += SimDuration::from_millis(10);
            s.on_request(1, t);
            s.on_output(1, 800.0 * MB);
            s.on_consumed(1);
        }
        // Active now (interval p99 ≈ 10 ms).
        assert!(s.target_bytes(t) > params::MIN_POOL_BYTES);
        // Two seconds of silence ≫ R_window → back to the floor.
        let later = t + SimDuration::from_secs(2);
        assert_eq!(s.target_bytes(later), params::MIN_POOL_BYTES);
    }

    #[test]
    fn target_sums_across_functions() {
        let mut s = PrewarmScaler::new();
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            t += SimDuration::from_millis(100);
            s.on_request(1, t);
            s.on_output(1, 400.0 * MB);
            s.on_consumed(1);
            s.on_request(2, t);
            s.on_output(2, 300.0 * MB);
            s.on_consumed(2);
        }
        let target = s.target_bytes(t);
        assert!((target - 700.0 * MB).abs() < 1.0, "target {target}");
    }

    #[test]
    fn concurrency_p99_scales_reservation() {
        let mut s = PrewarmScaler::new();
        let mut t = SimTime::ZERO;
        // Bursts of 8 outstanding outputs before consumption.
        for _ in 0..30 {
            t += SimDuration::from_millis(100);
            s.on_request(3, t);
            for _ in 0..8 {
                s.on_output(3, 100.0 * MB);
            }
            for _ in 0..8 {
                s.on_consumed(3);
            }
        }
        let target = s.target_bytes(t);
        assert!((target - 800.0 * MB).abs() < 1.0, "target {target}");
    }

    #[test]
    fn window_tracks_interval_p99() {
        let mut s = PrewarmScaler::new();
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            t += SimDuration::from_millis(250);
            s.on_request(9, t);
        }
        let w = s.window_secs(9).unwrap();
        assert!((w - 0.25).abs() < 1e-9, "window {w}");
    }
}
