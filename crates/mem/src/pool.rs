//! Per-GPU storage memory pool.
//!
//! Native GPU allocation (`cudaMalloc`/`cudaFree`) costs milliseconds, so
//! GPU stores keep a pre-allocated pool and serve allocations from it in
//! microseconds. The paper contrasts three pooling disciplines:
//!
//! * **Elastic** (GROUTER, §4.4.1) — the pool grows on demand and shrinks
//!   back to the pre-warm target (a 300 MB floor in idle periods), and never
//!   exceeds 50 % of free GPU memory.
//! * **Static** — a fixed reservation sized for the peak, released only by
//!   manual reclamation (PyTorch-style); the paper measures 4× over-use.
//! * **Symmetric** — NVSHMEM's symmetric heap: every allocation is mirrored
//!   on *all* GPUs of the job, so one GPU's demand bloats every GPU.
//!
//! The pool tracks *bytes*, not addresses: fragmentation is out of scope
//! (GMLake-style defragmentation is orthogonal, §7).

use grouter_sim::params;
use grouter_sim::time::SimDuration;

/// Which pooling discipline a pool follows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PoolDiscipline {
    /// GROUTER: grow on demand, shrink to the scaler's target.
    Elastic,
    /// Fixed pre-reservation of the given size; never shrinks.
    Static { bytes: f64 },
    /// NVSHMEM symmetric heap of the given per-GPU size; never shrinks and
    /// is charged to every GPU in the job regardless of local demand.
    Symmetric { bytes: f64 },
}

/// A successful allocation: the modelled latency the caller must charge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AllocGrant {
    /// Allocation latency (pool hit: µs; pool growth: ms for `cudaMalloc`).
    pub latency: SimDuration,
    /// Whether the pool had to grow (a native allocation happened).
    pub grew: bool,
}

/// Allocation failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AllocError {
    /// The object can fit only after evicting `shortfall` bytes of stored
    /// data (pool is at its cap or the GPU is out of memory).
    NeedsEviction { shortfall: f64 },
    /// The object can never fit on this GPU (larger than the storage cap).
    TooLarge,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::NeedsEviction { shortfall } => {
                write!(f, "needs eviction of {shortfall:.0} bytes")
            }
            AllocError::TooLarge => write!(f, "object exceeds storage capacity"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Byte-level accounting of one GPU's storage pool.
///
/// # Examples
///
/// ```
/// use grouter_mem::{ElasticPool, PoolDiscipline};
///
/// let mut pool = ElasticPool::new(PoolDiscipline::Elastic, 16e9);
/// // First allocation fits the 300 MB idle floor: a fast pool hit.
/// assert!(!pool.try_alloc(100e6).unwrap().grew);
/// // Growing past the floor costs a native cudaMalloc.
/// assert!(pool.try_alloc(500e6).unwrap().grew);
/// pool.free(600e6);
/// // Idle reclamation shrinks the reservation back toward the floor.
/// pool.reclaim_toward(0.0);
/// assert_eq!(pool.reserved(), 300e6);
/// ```
/// Point-in-time memory occupancy of one GPU's pool, published to the
/// service-mode router in heartbeats (see `DESIGN.md` §5.9). Fractions of
/// `capacity`; `free = capacity - runtime_used - reserved`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct PoolOccupancy {
    /// Total GPU memory.
    pub capacity: f64,
    /// Pool bytes reserved from the GPU (storage footprint).
    pub reserved: f64,
    /// Pool bytes held by live objects (storage demand).
    pub used: f64,
    /// Memory used by function execution.
    pub runtime_used: f64,
}

impl PoolOccupancy {
    /// GPU memory not taken by the runtime or the pool.
    pub fn idle(&self) -> f64 {
        (self.capacity - self.runtime_used - self.reserved).max(0.0)
    }

    /// Occupied fraction of capacity, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.capacity <= 0.0 {
            return 0.0;
        }
        ((self.runtime_used + self.reserved) / self.capacity).clamp(0.0, 1.0)
    }
}

#[derive(Clone, Debug)]
pub struct ElasticPool {
    discipline: PoolDiscipline,
    /// Total GPU memory.
    capacity: f64,
    /// Memory held by function execution (models, activations) — not ours.
    runtime_used: f64,
    /// Pool bytes currently allocated from the GPU.
    reserved: f64,
    /// Pool bytes handed out to live objects.
    used: f64,
    /// Idle floor (paper: 300 MB).
    min_pool: f64,
    /// Fraction of free memory the pool may occupy (paper: 0.5).
    free_fraction: f64,
    /// Number of native (`cudaMalloc`) growth events, for overhead reports.
    native_allocs: u64,
    /// High-water marks for the memory-overhead report (Fig. 20c).
    peak_used: f64,
    peak_reserved: f64,
    /// Failed-GPU quarantine: the pool holds nothing and admits nothing
    /// until the GPU rejoins (see [`ElasticPool::quarantine`]).
    quarantined: bool,
    /// Observability handle + the owning GPU's global index for event
    /// correlation ([`ElasticPool::set_recorder`]).
    rec: grouter_obs::Recorder,
    gpu_tag: u64,
}

impl ElasticPool {
    /// Create a pool on a GPU with `capacity` bytes of memory.
    pub fn new(discipline: PoolDiscipline, capacity: f64) -> ElasticPool {
        assert!(capacity > 0.0, "GPU capacity must be positive");
        let reserved = match discipline {
            PoolDiscipline::Elastic => params::MIN_POOL_BYTES.min(capacity),
            PoolDiscipline::Static { bytes } | PoolDiscipline::Symmetric { bytes } => {
                bytes.min(capacity)
            }
        };
        ElasticPool {
            discipline,
            capacity,
            runtime_used: 0.0,
            reserved,
            used: 0.0,
            min_pool: params::MIN_POOL_BYTES,
            free_fraction: params::STORAGE_FREE_FRACTION,
            native_allocs: 1, // the initial reservation
            peak_used: 0.0,
            peak_reserved: reserved,
            quarantined: false,
            rec: grouter_obs::Recorder::disabled(),
            gpu_tag: 0,
        }
    }

    /// Attach an observability recorder; `gpu` tags this pool's events
    /// (grow / shrink / pre-warm / quarantine) with the owning GPU's global
    /// index.
    pub fn set_recorder(&mut self, rec: grouter_obs::Recorder, gpu: u64) {
        self.rec = rec;
        self.gpu_tag = gpu;
    }

    fn emit_pool_event(&self, name: &'static str, extra: f64, key: &'static str) {
        self.rec.instant(
            grouter_obs::Comp::Mem,
            name,
            grouter_obs::Ids::NONE,
            vec![
                ("gpu", self.gpu_tag.into()),
                ("reserved", self.reserved.into()),
                ("used", self.used.into()),
                (key, extra.into()),
            ],
        );
    }

    /// Quarantine a failed GPU's pool: every stored byte is lost, the
    /// reservation is surrendered and further allocations are refused until
    /// [`ElasticPool::release_quarantine`]. Returns the live demand that was
    /// dropped (the caller purges the matching store entries). Idempotent.
    pub fn quarantine(&mut self) -> f64 {
        if self.quarantined {
            return 0.0;
        }
        let lost = self.used;
        self.quarantined = true;
        self.used = 0.0;
        self.reserved = 0.0;
        self.runtime_used = 0.0;
        if self.rec.on(grouter_obs::Comp::Mem) {
            self.emit_pool_event("pool_quarantine", lost, "lost");
        }
        #[cfg(feature = "audit")]
        self.audit_accounting();
        lost
    }

    /// Readmit a recovered GPU: the pool restarts empty at its discipline's
    /// initial reservation (a fresh native allocation). Idempotent.
    pub fn release_quarantine(&mut self) {
        if !self.quarantined {
            return;
        }
        self.quarantined = false;
        self.reserved = match self.discipline {
            PoolDiscipline::Elastic => self.min_pool.min(self.capacity),
            PoolDiscipline::Static { bytes } | PoolDiscipline::Symmetric { bytes } => {
                bytes.min(self.capacity)
            }
        };
        self.native_allocs += 1;
        self.note_peaks();
        #[cfg(feature = "audit")]
        self.audit_accounting();
    }

    /// Whether the pool is currently quarantined.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// `--features audit`: byte accounting stays coherent after every
    /// mutation — demand within the reservation, the reservation within the
    /// GPU, peaks ahead of live values, and the elastic idle floor held.
    #[cfg(feature = "audit")]
    fn audit_accounting(&self) {
        grouter_audit::check(
            "pool.accounting",
            self.used >= 0.0
                && self.used <= self.reserved + 0.5
                && self.reserved <= self.capacity + 0.5,
            || {
                format!(
                    "used {} / reserved {} / capacity {}",
                    self.used, self.reserved, self.capacity
                )
            },
        );
        grouter_audit::check(
            "pool.accounting",
            self.peak_used + 0.5 >= self.used && self.peak_reserved + 0.5 >= self.reserved,
            || {
                format!(
                    "peaks ({}, {}) behind live values ({}, {})",
                    self.peak_used, self.peak_reserved, self.used, self.reserved
                )
            },
        );
        if matches!(self.discipline, PoolDiscipline::Elastic) && !self.quarantined {
            grouter_audit::check(
                "scaler.floor",
                self.reserved + 0.5 >= self.min_pool.min(self.capacity),
                || {
                    format!(
                        "elastic reservation {} fell below the idle floor {}",
                        self.reserved,
                        self.min_pool.min(self.capacity)
                    )
                },
            );
        }
        // Quarantine accounting identity: a quarantined pool holds nothing —
        // no demand, no reservation, no runtime charge.
        grouter_audit::check(
            "pool.quarantine",
            !self.quarantined
                || (self.used == 0.0 && self.reserved == 0.0 && self.runtime_used == 0.0),
            || {
                format!(
                    "quarantined pool still holds used {} / reserved {} / runtime {}",
                    self.used, self.reserved, self.runtime_used
                )
            },
        );
    }

    fn note_peaks(&mut self) {
        self.peak_used = self.peak_used.max(self.used);
        self.peak_reserved = self.peak_reserved.max(self.reserved);
    }

    /// Highest live demand ever observed.
    pub fn peak_used(&self) -> f64 {
        self.peak_used
    }

    /// Largest reservation ever held (the storage footprint peak).
    pub fn peak_reserved(&self) -> f64 {
        self.peak_reserved
    }

    pub fn discipline(&self) -> PoolDiscipline {
        self.discipline
    }

    /// Total GPU memory.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Pool bytes currently reserved from the GPU (the storage *footprint*).
    pub fn reserved(&self) -> f64 {
        self.reserved
    }

    /// Pool bytes held by live objects (the storage *demand*).
    pub fn used(&self) -> f64 {
        self.used
    }

    /// Memory used by function execution.
    pub fn runtime_used(&self) -> f64 {
        self.runtime_used
    }

    /// GPU memory not taken by the runtime or the pool.
    pub fn idle_gpu_memory(&self) -> f64 {
        (self.capacity - self.runtime_used - self.reserved).max(0.0)
    }

    /// The most the pool may reserve right now: `free_fraction` of the
    /// memory not used by function execution (paper §4.4.2: 50 % of free
    /// memory), but never below the idle floor.
    pub fn storage_cap(&self) -> f64 {
        let cap = (self.capacity - self.runtime_used).max(0.0) * self.free_fraction;
        cap.max(self.min_pool.min(self.capacity))
    }

    /// Number of native allocation events so far.
    pub fn native_allocs(&self) -> u64 {
        self.native_allocs
    }

    /// Point-in-time occupancy snapshot, as shipped in service-mode
    /// heartbeats. A plain value type so the control plane can carry it
    /// across the fabric without borrowing the pool.
    pub fn occupancy(&self) -> PoolOccupancy {
        PoolOccupancy {
            capacity: self.capacity,
            reserved: self.reserved,
            used: self.used,
            runtime_used: self.runtime_used,
        }
    }

    /// Record a change in runtime (function execution) memory usage.
    ///
    /// Returns the number of stored bytes that must be migrated away to
    /// respect the new cap (0.0 when the pool still fits). The caller evicts
    /// via its migration policy and then calls [`ElasticPool::free`].
    pub fn set_runtime_used(&mut self, bytes: f64) -> f64 {
        if self.quarantined {
            return 0.0; // a failed GPU executes nothing
        }
        self.runtime_used = bytes.clamp(0.0, self.capacity);
        let cap = self.storage_cap();
        if self.reserved > cap && matches!(self.discipline, PoolDiscipline::Elastic) {
            // Shrink the empty part of the pool for free; live objects can
            // only leave via migration.
            let shrinkable = self.reserved - self.used;
            let overshoot = self.reserved - cap;
            self.reserved -= overshoot.min(shrinkable);
        }
        #[cfg(feature = "audit")]
        self.audit_accounting();
        (self.used - self.storage_cap()).max(0.0)
    }

    /// Allocate `bytes` for a new object.
    pub fn try_alloc(&mut self, bytes: f64) -> Result<AllocGrant, AllocError> {
        assert!(bytes >= 0.0, "allocation size must be non-negative");
        if self.quarantined {
            // Nothing fits on a failed GPU; callers fall back elsewhere.
            return Err(AllocError::TooLarge);
        }
        let cap = self.storage_cap();
        if bytes > cap {
            return Err(AllocError::TooLarge);
        }
        if self.used + bytes <= self.reserved {
            self.used += bytes;
            self.note_peaks();
            #[cfg(feature = "audit")]
            self.audit_accounting();
            return Ok(AllocGrant {
                latency: params::POOL_ALLOC,
                grew: false,
            });
        }
        match self.discipline {
            PoolDiscipline::Static { .. } | PoolDiscipline::Symmetric { .. } => {
                // Fixed pools never grow: demand beyond the reservation needs
                // eviction.
                Err(AllocError::NeedsEviction {
                    shortfall: self.used + bytes - self.reserved,
                })
            }
            PoolDiscipline::Elastic => {
                let want = self.used + bytes;
                if want <= cap {
                    self.reserved = want;
                    self.used = want;
                    self.native_allocs += 1;
                    self.note_peaks();
                    if self.rec.on(grouter_obs::Comp::Mem) {
                        self.emit_pool_event("pool_grow", bytes, "bytes");
                        self.rec.count(grouter_obs::Comp::Mem, "native_allocs", 1);
                    }
                    #[cfg(feature = "audit")]
                    self.audit_accounting();
                    Ok(AllocGrant {
                        latency: params::CUDA_MALLOC,
                        grew: true,
                    })
                } else {
                    Err(AllocError::NeedsEviction {
                        shortfall: want - cap,
                    })
                }
            }
        }
    }

    /// Release `bytes` of a live object (consumed, deleted, or migrated).
    /// No-op while quarantined: the failed GPU's objects were purged with the
    /// pool, so a late free would double-count.
    pub fn free(&mut self, bytes: f64) {
        if self.quarantined {
            return;
        }
        self.used = (self.used - bytes).max(0.0);
        #[cfg(feature = "audit")]
        self.audit_accounting();
    }

    /// Shrink an elastic pool's reservation toward `target` bytes (the
    /// pre-warm scaler's estimate). Reservation never drops below live use
    /// or the idle floor. No-op for fixed disciplines.
    pub fn reclaim_toward(&mut self, target: f64) {
        if !matches!(self.discipline, PoolDiscipline::Elastic) || self.quarantined {
            return;
        }
        let floor = self.used.max(self.min_pool.min(self.capacity));
        let before = self.reserved;
        self.reserved = self.reserved.min(target.max(floor)).max(floor);
        if self.reserved < before && self.rec.on(grouter_obs::Comp::Mem) {
            self.emit_pool_event("pool_shrink", before - self.reserved, "released");
        }
        #[cfg(feature = "audit")]
        self.audit_accounting();
    }

    /// Grow an elastic pool's reservation toward `target` ahead of demand
    /// (pre-warming). Bounded by the storage cap. Returns `true` if a native
    /// allocation happened.
    pub fn prewarm_toward(&mut self, target: f64) -> bool {
        if !matches!(self.discipline, PoolDiscipline::Elastic) || self.quarantined {
            return false;
        }
        let goal = target.min(self.storage_cap());
        let grew = if goal > self.reserved {
            self.reserved = goal;
            self.native_allocs += 1;
            self.note_peaks();
            if self.rec.on(grouter_obs::Comp::Mem) {
                self.emit_pool_event("prewarm", goal, "target");
                self.rec.count(grouter_obs::Comp::Mem, "native_allocs", 1);
            }
            true
        } else {
            false
        };
        #[cfg(feature = "audit")]
        self.audit_accounting();
        grew
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    fn elastic(capacity: f64) -> ElasticPool {
        ElasticPool::new(PoolDiscipline::Elastic, capacity)
    }

    #[test]
    fn pool_hit_is_fast_growth_is_slow() {
        let mut p = elastic(16.0 * GB);
        // First alloc fits the 300 MB floor.
        let g = p.try_alloc(100e6).unwrap();
        assert!(!g.grew);
        assert_eq!(g.latency, params::POOL_ALLOC);
        // Second alloc exceeds the floor → native growth.
        let g = p.try_alloc(400e6).unwrap();
        assert!(g.grew);
        assert_eq!(g.latency, params::CUDA_MALLOC);
        assert_eq!(p.used(), 500e6);
    }

    #[test]
    fn cap_is_half_of_free_memory() {
        let mut p = elastic(16.0 * GB);
        assert_eq!(p.storage_cap(), 8.0 * GB);
        p.set_runtime_used(8.0 * GB);
        assert_eq!(p.storage_cap(), 4.0 * GB);
    }

    #[test]
    fn alloc_beyond_cap_needs_eviction() {
        let mut p = elastic(16.0 * GB);
        p.try_alloc(7.5 * GB).unwrap();
        match p.try_alloc(1.0 * GB) {
            Err(AllocError::NeedsEviction { shortfall }) => {
                assert!((shortfall - 0.5 * GB).abs() < 1.0);
            }
            other => panic!("expected NeedsEviction, got {other:?}"),
        }
    }

    #[test]
    fn object_larger_than_cap_rejected() {
        let mut p = elastic(16.0 * GB);
        assert_eq!(p.try_alloc(9.0 * GB), Err(AllocError::TooLarge));
    }

    #[test]
    fn free_releases_demand_but_not_reservation() {
        let mut p = elastic(16.0 * GB);
        p.try_alloc(2.0 * GB).unwrap();
        let reserved = p.reserved();
        p.free(2.0 * GB);
        assert_eq!(p.used(), 0.0);
        assert_eq!(p.reserved(), reserved, "reservation kept for reuse");
        // Reclaim shrinks it back toward the floor.
        p.reclaim_toward(0.0);
        assert_eq!(p.reserved(), params::MIN_POOL_BYTES);
    }

    #[test]
    fn static_pool_never_grows() {
        let mut p = ElasticPool::new(PoolDiscipline::Static { bytes: 1.0 * GB }, 16.0 * GB);
        p.try_alloc(0.9 * GB).unwrap();
        assert!(matches!(
            p.try_alloc(0.2 * GB),
            Err(AllocError::NeedsEviction { .. })
        ));
        p.reclaim_toward(0.0);
        assert_eq!(p.reserved(), 1.0 * GB, "static pools ignore reclamation");
    }

    #[test]
    fn runtime_pressure_forces_migration() {
        let mut p = elastic(16.0 * GB);
        p.try_alloc(6.0 * GB).unwrap();
        // Functions now occupy 8 GB → cap drops to 4 GB; 2 GB must move.
        let must_move = p.set_runtime_used(8.0 * GB);
        assert!((must_move - 2.0 * GB).abs() < 1.0);
        // Caller migrates and frees.
        p.free(2.0 * GB);
        assert!(p.used() <= p.storage_cap() + 1.0);
    }

    #[test]
    fn runtime_pressure_shrinks_empty_reservation_silently() {
        let mut p = elastic(16.0 * GB);
        p.try_alloc(6.0 * GB).unwrap();
        p.free(5.0 * GB); // 1 GB live, 6 GB reserved
        let must_move = p.set_runtime_used(8.0 * GB);
        assert_eq!(must_move, 0.0, "live data fits under the new cap");
        assert!(p.reserved() <= p.storage_cap() + 1.0);
        assert_eq!(p.used(), 1.0 * GB);
    }

    #[test]
    fn prewarm_grows_reservation_within_cap() {
        let mut p = elastic(16.0 * GB);
        assert!(p.prewarm_toward(2.0 * GB));
        assert_eq!(p.reserved(), 2.0 * GB);
        // Cannot exceed the cap.
        assert!(p.prewarm_toward(100.0 * GB));
        assert_eq!(p.reserved(), p.storage_cap());
        // No growth needed → no native alloc.
        assert!(!p.prewarm_toward(1.0 * GB));
    }

    #[test]
    fn idle_memory_accounting() {
        let mut p = elastic(16.0 * GB);
        p.set_runtime_used(4.0 * GB);
        p.prewarm_toward(2.0 * GB);
        assert_eq!(p.idle_gpu_memory(), 10.0 * GB);
    }

    #[test]
    fn quarantine_drops_everything_and_refuses_allocs() {
        let mut p = elastic(16.0 * GB);
        p.try_alloc(2.0 * GB).unwrap();
        p.set_runtime_used(4.0 * GB);
        let lost = p.quarantine();
        assert_eq!(lost, 2.0 * GB, "live demand reported as lost");
        assert!(p.is_quarantined());
        assert_eq!(p.used(), 0.0);
        assert_eq!(p.reserved(), 0.0);
        assert_eq!(p.runtime_used(), 0.0);
        assert_eq!(p.try_alloc(1e6), Err(AllocError::TooLarge));
        assert!(!p.prewarm_toward(1.0 * GB));
        assert_eq!(p.set_runtime_used(1.0 * GB), 0.0);
        // Idempotent: a second quarantine loses nothing more.
        assert_eq!(p.quarantine(), 0.0);
    }

    #[test]
    fn release_quarantine_restarts_at_the_idle_floor() {
        let mut p = elastic(16.0 * GB);
        p.try_alloc(2.0 * GB).unwrap();
        p.quarantine();
        let allocs = p.native_allocs();
        p.release_quarantine();
        assert!(!p.is_quarantined());
        assert_eq!(p.reserved(), params::MIN_POOL_BYTES);
        assert_eq!(p.used(), 0.0);
        assert_eq!(p.native_allocs(), allocs + 1, "rejoin re-reserves natively");
        assert!(p.try_alloc(100e6).is_ok());
        // Idempotent.
        p.release_quarantine();
        assert_eq!(p.reserved(), params::MIN_POOL_BYTES);
    }

    #[test]
    fn native_alloc_counter_counts_growth() {
        let mut p = elastic(16.0 * GB);
        let start = p.native_allocs();
        p.try_alloc(100e6).unwrap(); // hit
        p.try_alloc(1.0 * GB).unwrap(); // growth
        assert_eq!(p.native_allocs(), start + 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Alloc(f64),
        Free(f64),
        Runtime(f64),
        Reclaim(f64),
        Prewarm(f64),
        Quarantine,
        Rejoin,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1e6..4e9).prop_map(Op::Alloc),
            (1e6..4e9).prop_map(Op::Free),
            (0.0..16e9).prop_map(Op::Runtime),
            (0.0..8e9).prop_map(Op::Reclaim),
            (0.0..8e9).prop_map(Op::Prewarm),
            Just(Op::Quarantine),
            Just(Op::Rejoin),
        ]
    }

    proptest! {
        /// Pool accounting invariants hold under arbitrary operation
        /// sequences: used ≤ reserved ≤ capacity, cap respected after
        /// every successful allocation, nothing goes negative.
        #[test]
        fn accounting_invariants(ops in proptest::collection::vec(arb_op(), 1..64)) {
            let mut pool = ElasticPool::new(PoolDiscipline::Elastic, 16e9);
            let mut live = 0.0f64;
            for op in ops {
                match op {
                    Op::Alloc(b) => {
                        if pool.try_alloc(b).is_ok() {
                            live += b;
                        }
                    }
                    Op::Free(b) => {
                        let b = b.min(live);
                        pool.free(b);
                        live -= b;
                    }
                    Op::Runtime(b) => {
                        let must_move = pool.set_runtime_used(b);
                        // Caller contract: migrate exactly what was asked.
                        if must_move > 0.0 {
                            pool.free(must_move.min(live));
                            live = (live - must_move).max(0.0);
                        }
                    }
                    Op::Reclaim(t) => pool.reclaim_toward(t),
                    Op::Prewarm(t) => {
                        pool.prewarm_toward(t);
                    }
                    Op::Quarantine => {
                        pool.quarantine();
                        live = 0.0;
                    }
                    Op::Rejoin => pool.release_quarantine(),
                }
                if pool.is_quarantined() {
                    prop_assert_eq!(pool.used(), 0.0, "quarantined pool holds demand");
                    prop_assert_eq!(pool.reserved(), 0.0, "quarantined pool holds reservation");
                }
                prop_assert!(pool.used() >= -1.0, "negative use");
                prop_assert!(
                    pool.used() <= pool.reserved() + 1.0,
                    "used {} > reserved {}",
                    pool.used(),
                    pool.reserved()
                );
                prop_assert!(
                    pool.reserved() <= pool.capacity() + 1.0,
                    "reserved beyond capacity"
                );
                prop_assert!(pool.idle_gpu_memory() >= 0.0);
                prop_assert!(pool.peak_used() >= pool.used() - 1.0);
                prop_assert!(pool.peak_reserved() >= pool.reserved() - 1.0);
            }
        }

        /// Fixed disciplines never change their reservation.
        #[test]
        fn fixed_pools_hold_their_reservation(ops in proptest::collection::vec(arb_op(), 1..32)) {
            for discipline in [
                PoolDiscipline::Static { bytes: 4e9 },
                PoolDiscipline::Symmetric { bytes: 4e9 },
            ] {
                let mut pool = ElasticPool::new(discipline, 16e9);
                let initial = pool.reserved();
                for op in ops.clone() {
                    match op {
                        Op::Alloc(b) => {
                            let _ = pool.try_alloc(b);
                        }
                        Op::Free(b) => pool.free(b),
                        Op::Runtime(b) => {
                            let _ = pool.set_runtime_used(b);
                        }
                        Op::Reclaim(t) => pool.reclaim_toward(t),
                        Op::Prewarm(t) => {
                            pool.prewarm_toward(t);
                        }
                        Op::Quarantine => {
                            pool.quarantine();
                        }
                        Op::Rejoin => pool.release_quarantine(),
                    }
                    // Quarantine is the only event that moves a fixed
                    // reservation; rejoin restores it exactly.
                    let expect = if pool.is_quarantined() { 0.0 } else { initial };
                    prop_assert_eq!(pool.reserved(), expect);
                }
            }
        }
    }
}
