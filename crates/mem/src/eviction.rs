//! Migration victim selection (paper §4.4.2, Fig. 11b).
//!
//! When GPU memory pressure rises, stored intermediate data must move to
//! host memory. The policies differ in *which* objects go first:
//!
//! * [`LruPolicy`] — least-recently-*accessed* first. This is what DNN-
//!   oriented memory managers do, and it is wrong for serverless workflows:
//!   the output of function `a₁` was written earliest, so LRU evicts it even
//!   though its consumer `b₁` is at the *head* of the request queue.
//! * [`QueueAwarePolicy`] (RQ) — evict the data whose consumer sits deepest
//!   in the request queue (needed latest); data for imminent invocations
//!   stays resident.
//! * [`GrouterPolicy`] — queue-aware selection plus *proactive restoration*:
//!   [`GrouterPolicy::restore_order`] returns migrated objects in ascending
//!   need order so the store can pull them back as soon as memory frees.

use grouter_sim::time::SimTime;

/// Metadata the policies see for each stored object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectMeta {
    /// Opaque object key (the store's data ID).
    pub key: u64,
    /// Object size in bytes.
    pub bytes: f64,
    /// Last time the object was written or read.
    pub last_access: SimTime,
    /// Queue rank of the *earliest* pending consumer of this object:
    /// 0 = next to run. `None` = no known pending consumer (safest victim).
    pub next_use: Option<u64>,
}

/// A victim-selection strategy.
pub trait EvictionPolicy {
    /// Pick objects to migrate, in order, until at least `need` bytes are
    /// covered. `objects` is the resident set; implementations must not
    /// select the same key twice. Returns selected keys in eviction order.
    fn select_victims(&self, objects: &[ObjectMeta], need: f64) -> Vec<u64>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Walk `ordered` (best victims first) until `need` bytes are covered.
fn take_until(ordered: Vec<&ObjectMeta>, need: f64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut freed = 0.0;
    for obj in ordered {
        if freed >= need {
            break;
        }
        freed += obj.bytes;
        out.push(obj.key);
    }
    out
}

/// Classic least-recently-used eviction (the NVSHMEM+ baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct LruPolicy;

impl EvictionPolicy for LruPolicy {
    fn select_victims(&self, objects: &[ObjectMeta], need: f64) -> Vec<u64> {
        let mut ordered: Vec<&ObjectMeta> = objects.iter().collect();
        // Oldest access first; key breaks ties deterministically.
        ordered.sort_by_key(|o| (o.last_access, o.key));
        take_until(ordered, need)
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

/// Request-queue-aware eviction (RQ): evict data needed latest first.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueAwarePolicy;

impl EvictionPolicy for QueueAwarePolicy {
    fn select_victims(&self, objects: &[ObjectMeta], need: f64) -> Vec<u64> {
        let mut ordered: Vec<&ObjectMeta> = objects.iter().collect();
        // Best victims first: objects nobody is scheduled to read, then
        // objects whose consumer sits deepest in the queue.
        ordered.sort_by_key(|o| match o.next_use {
            None => (0u8, 0u64, o.key),
            Some(rank) => (1, u64::MAX - rank, o.key),
        });
        take_until(ordered, need)
    }

    fn name(&self) -> &'static str {
        "RQ"
    }
}

/// GROUTER's policy: queue-aware victim selection (identical to
/// [`QueueAwarePolicy`]) + an ordering for proactive restoration of migrated
/// data when memory frees up.
#[derive(Clone, Copy, Debug, Default)]
pub struct GrouterPolicy;

impl GrouterPolicy {
    /// Order migrated objects for restoration: soonest-needed first; objects
    /// without a known consumer are not restored proactively.
    pub fn restore_order(&self, migrated: &[ObjectMeta]) -> Vec<u64> {
        let mut with_use: Vec<&ObjectMeta> =
            migrated.iter().filter(|o| o.next_use.is_some()).collect();
        with_use.sort_by_key(|o| (o.next_use.unwrap_or(u64::MAX), o.key));
        with_use.iter().map(|o| o.key).collect()
    }
}

impl EvictionPolicy for GrouterPolicy {
    fn select_victims(&self, objects: &[ObjectMeta], need: f64) -> Vec<u64> {
        QueueAwarePolicy.select_victims(objects, need)
    }

    fn name(&self) -> &'static str {
        "GROUTER"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(key: u64, bytes: f64, last_access: u64, next_use: Option<u64>) -> ObjectMeta {
        ObjectMeta {
            key,
            bytes,
            last_access: SimTime(last_access),
            next_use,
        }
    }

    #[test]
    fn lru_evicts_oldest_access_first() {
        let objects = vec![
            obj(1, 100.0, 10, Some(0)), // oldest access but needed next!
            obj(2, 100.0, 20, Some(5)),
            obj(3, 100.0, 30, Some(9)),
        ];
        let victims = LruPolicy.select_victims(&objects, 150.0);
        assert_eq!(victims, vec![1, 2], "LRU ignores the queue");
    }

    #[test]
    fn queue_aware_evicts_latest_needed_first() {
        // Fig. 11b: a1's output (consumer b1 enqueued earlier) must outlive
        // a2's output (consumer b2 enqueued later), regardless of access
        // recency.
        let objects = vec![
            obj(1, 100.0, 10, Some(0)), // a1's output — b1 is next
            obj(2, 100.0, 20, Some(7)), // a2's output — b2 is far back
        ];
        let victims = QueueAwarePolicy.select_victims(&objects, 100.0);
        assert_eq!(victims, vec![2]);
    }

    #[test]
    fn queue_aware_prefers_unconsumed_objects() {
        let objects = vec![
            obj(1, 100.0, 10, Some(3)),
            obj(2, 100.0, 20, None), // nobody scheduled to read it
            obj(3, 100.0, 30, Some(1)),
        ];
        let victims = QueueAwarePolicy.select_victims(&objects, 250.0);
        assert_eq!(victims, vec![2, 1, 3]);
    }

    #[test]
    fn selection_stops_once_need_met() {
        let objects = vec![
            obj(1, 400.0, 10, None),
            obj(2, 400.0, 20, Some(1)),
            obj(3, 400.0, 30, Some(0)),
        ];
        let victims = QueueAwarePolicy.select_victims(&objects, 300.0);
        assert_eq!(victims, vec![1], "one object already covers the need");
    }

    #[test]
    fn empty_set_yields_no_victims() {
        assert!(LruPolicy.select_victims(&[], 100.0).is_empty());
        assert!(QueueAwarePolicy.select_victims(&[], 100.0).is_empty());
    }

    #[test]
    fn need_larger_than_everything_selects_all() {
        let objects = vec![obj(1, 10.0, 1, None), obj(2, 10.0, 2, Some(0))];
        let victims = GrouterPolicy.select_victims(&objects, 1e9);
        assert_eq!(victims.len(), 2);
    }

    #[test]
    fn grouter_matches_queue_aware_selection() {
        let objects = vec![
            obj(1, 100.0, 10, Some(0)),
            obj(2, 100.0, 20, Some(7)),
            obj(3, 100.0, 5, None),
        ];
        assert_eq!(
            GrouterPolicy.select_victims(&objects, 100.0),
            QueueAwarePolicy.select_victims(&objects, 100.0)
        );
    }

    #[test]
    fn restore_order_is_soonest_first() {
        let migrated = vec![
            obj(1, 100.0, 10, Some(9)),
            obj(2, 100.0, 20, Some(2)),
            obj(3, 100.0, 30, None), // never proactively restored
            obj(4, 100.0, 40, Some(5)),
        ];
        assert_eq!(GrouterPolicy.restore_order(&migrated), vec![2, 4, 1]);
    }

    #[test]
    fn deterministic_tie_break_by_key() {
        let objects = vec![obj(5, 100.0, 10, Some(3)), obj(2, 100.0, 10, Some(3))];
        let victims = QueueAwarePolicy.select_victims(&objects, 100.0);
        assert_eq!(victims, vec![2], "ties resolve by key for determinism");
    }
}
