//! Circular pinned host-memory buffer (paper §4.3.2).
//!
//! PCIe DMA requires pinned (page-locked) host buffers, and pinning is
//! expensive (milliseconds). GROUTER therefore keeps one fixed circular
//! pinned buffer per node, shared across functions and reused batch after
//! batch — "minimizing pinned memory allocation overhead and reducing cache
//! bloat". Baselines that pin per transfer pay [`grouter_sim::params::PINNED_ALLOC`]
//! every time.

use grouter_sim::params;
use grouter_sim::time::SimDuration;

/// A byte-accounted circular pinned staging buffer.
#[derive(Clone, Debug)]
pub struct PinnedRing {
    capacity: f64,
    in_use: f64,
    /// How many pinned allocations the node performed (1 = just the ring).
    pin_events: u64,
    /// Total bytes that have passed through the ring.
    bytes_staged: f64,
}

/// Outcome of a staging-buffer acquisition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageGrant {
    /// Latency charged (zero on ring reuse; a pin event otherwise).
    pub latency: SimDuration,
    /// Whether a fresh pinned allocation was needed.
    pub pinned_fresh: bool,
}

impl PinnedRing {
    /// Create a ring of `capacity` bytes. The initial pinning is counted as
    /// one pin event.
    pub fn new(capacity: f64) -> PinnedRing {
        assert!(capacity > 0.0, "ring capacity must be positive");
        PinnedRing {
            capacity,
            in_use: 0.0,
            pin_events: 1,
            bytes_staged: 0.0,
        }
    }

    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    pub fn in_use(&self) -> f64 {
        self.in_use
    }

    pub fn available(&self) -> f64 {
        self.capacity - self.in_use
    }

    pub fn pin_events(&self) -> u64 {
        self.pin_events
    }

    pub fn bytes_staged(&self) -> f64 {
        self.bytes_staged
    }

    /// Reserve `bytes` of staging space for one batch.
    ///
    /// Fits in the ring → free (reuse). Does not fit → the transfer falls
    /// back to an ad-hoc pinned allocation and pays the pinning latency (the
    /// ring itself is left untouched; the ad-hoc buffer is freed right after
    /// the batch, so only the latency and the pin-event count persist).
    pub fn acquire(&mut self, bytes: f64) -> StageGrant {
        assert!(bytes >= 0.0);
        self.bytes_staged += bytes;
        if bytes <= self.available() {
            self.in_use += bytes;
            StageGrant {
                latency: SimDuration::ZERO,
                pinned_fresh: false,
            }
        } else {
            self.pin_events += 1;
            StageGrant {
                latency: params::PINNED_ALLOC,
                pinned_fresh: true,
            }
        }
    }

    /// Return `bytes` of ring space after the batch completes. Only bytes
    /// actually taken from the ring should be released; ad-hoc fallbacks
    /// release nothing.
    pub fn release(&mut self, bytes: f64) {
        self.in_use = (self.in_use - bytes).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_is_free() {
        let mut ring = PinnedRing::new(64e6);
        let g = ring.acquire(2e6);
        assert!(!g.pinned_fresh);
        assert_eq!(g.latency, SimDuration::ZERO);
        assert_eq!(ring.in_use(), 2e6);
        ring.release(2e6);
        assert_eq!(ring.in_use(), 0.0);
    }

    #[test]
    fn overflow_pays_pinning_latency() {
        let mut ring = PinnedRing::new(10e6);
        ring.acquire(8e6);
        let g = ring.acquire(4e6);
        assert!(g.pinned_fresh);
        assert_eq!(g.latency, params::PINNED_ALLOC);
        // Ring occupancy unchanged by the fallback.
        assert_eq!(ring.in_use(), 8e6);
        assert_eq!(ring.pin_events(), 2);
    }

    #[test]
    fn byte_counter_accumulates() {
        let mut ring = PinnedRing::new(10e6);
        ring.acquire(1e6);
        ring.release(1e6);
        ring.acquire(2e6);
        assert_eq!(ring.bytes_staged(), 3e6);
    }

    #[test]
    fn release_clamps_at_zero() {
        let mut ring = PinnedRing::new(10e6);
        ring.acquire(1e6);
        ring.release(5e6);
        assert_eq!(ring.in_use(), 0.0);
    }
}
