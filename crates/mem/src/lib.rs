//! # grouter-mem
//!
//! GROUTER's *elastic GPU data storage* (paper §4.4) as pure, testable
//! policy + accounting. Actual byte movement (evicting to host memory,
//! restoring to GPU) is executed by the data plane; this crate decides
//! **how much pool to hold** and **which objects to migrate**.
//!
//! * [`pool`] — per-GPU [`pool::ElasticPool`]: pool-based allocation
//!   (microseconds) vs native `cudaMalloc` (milliseconds), growth bounded by
//!   the 50 %-of-free-memory cap, idle reclamation, plus the static and
//!   NVSHMEM-symmetric pooling disciplines used as baselines in Fig. 20(c).
//! * [`scaler`] — the histogram pre-warming estimator of §4.4.1:
//!   `R_window`, `R_size`, `R_con` 99th percentiles per function and the
//!   resulting target pool size `Σ R_size·R_con·1{active}`.
//! * [`eviction`] — migration victim selection: classic LRU (NVSHMEM+
//!   baseline), the request-queue-aware policy (RQ), and queue-aware +
//!   proactive restore (GROUTER, Fig. 11b).
//! * [`pinned`] — the circular pinned host-buffer ring reused across
//!   batched PCIe transfers (§4.3.2).

pub mod eviction;
pub mod pinned;
pub mod pool;
pub mod scaler;

pub use eviction::{EvictionPolicy, GrouterPolicy, LruPolicy, ObjectMeta, QueueAwarePolicy};
pub use pinned::PinnedRing;
pub use pool::{AllocError, AllocGrant, ElasticPool, PoolDiscipline, PoolOccupancy};
pub use scaler::PrewarmScaler;
