//! Call-site extraction and name resolution over the item model, plus the
//! reachability closures the passes consume.
//!
//! Resolution strategy (documented with its caveats in DESIGN.md §5.8):
//!
//! * `recv.method(...)` — if `recv` is `self` and the enclosing impl type
//!   defines `method`, bind exactly those; otherwise bind **all** workspace
//!   methods named `method` (trait objects and generic receivers are
//!   conservatively treated as calling every candidate). No workspace
//!   candidate ⇒ external (a std/vendor method).
//! * `Type::func(...)` — bound via the (type, name) table; `Self::` uses
//!   the enclosing impl type. Unknown type ⇒ external.
//! * `free_fn(...)` / `path::to::fn(...)` — resolved against the local
//!   module, `use` imports, glob imports, and absolute module paths. A
//!   plain name that binds nowhere but collides with a workspace definition
//!   is counted **unresolved** (reported, never silently dropped); a name
//!   with no workspace collision is external.
//! * Uppercase-initial call heads (`Some(`, `Event::Arrival(`) are tuple
//!   constructors, not calls.
//! * `<T as Trait>::f(...)` binds all workspace methods named `f`.
//!
//! Closure bodies are token ranges inside their defining function, so calls
//! made from a closure are attributed to the defining function — which is
//! exactly the conservative attribution reachability needs.

use crate::model::{is_keyword, FnDef, Workspace};
use grouter_lint::common::{Sp, Tok};

#[derive(Debug, Clone)]
pub enum Callee {
    /// `a::b::f(...)` or plain `f(...)` — path segments as written.
    Path(Vec<String>),
    /// `.name(...)` with the receiver ident directly before the dot, if any.
    Method { name: String, recv: Option<String> },
}

#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name (ordering key for the taint pass).
    pub tok: usize,
    pub line: usize,
    pub col: usize,
    pub callee: Callee,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// ≥1 workspace target.
    Internal(Vec<usize>),
    /// Confidently outside the workspace (std/vendor).
    External,
    /// Could not bind, but the name collides with a workspace definition.
    Unresolved,
}

#[derive(Debug, Default, Clone)]
pub struct GraphStats {
    pub call_sites: usize,
    pub internal: usize,
    pub external: usize,
    pub unresolved: usize,
}

impl GraphStats {
    /// Fraction of call sites bound to a workspace target or confidently
    /// classified external.
    pub fn resolution_rate(&self) -> f64 {
        if self.call_sites == 0 {
            return 1.0;
        }
        1.0 - self.unresolved as f64 / self.call_sites as f64
    }
}

pub struct CallGraph {
    /// Per-fn resolved call sites (site, resolution).
    pub sites: Vec<Vec<(CallSite, Resolution)>>,
    /// Forward edges fn → callee fns (deduped).
    pub edges: Vec<Vec<usize>>,
    /// Reverse edges.
    pub redges: Vec<Vec<usize>>,
    pub stats: GraphStats,
}

fn ident_at(toks: &[Sp], i: usize) -> Option<&str> {
    match toks.get(i).map(|s| &s.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Sp], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|s| &s.tok), Some(Tok::Punct(p)) if *p == c)
}

fn is_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

fn is_numeric(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Extract the call sites in `body` (a token range of `toks`).
pub fn extract_call_sites(toks: &[Sp], body: (usize, usize)) -> Vec<CallSite> {
    let (lo, hi) = body;
    let mut out = Vec::new();
    for k in lo..hi {
        if !punct_at(toks, k, '(') || k == 0 {
            continue;
        }
        let mut p = k - 1;
        // Turbofish `f::<T>(` — hop back over the generic args.
        if punct_at(toks, p, '>') && p > lo {
            let mut depth = 1i32;
            let mut m = p;
            while m > lo && depth > 0 {
                m -= 1;
                match toks[m].tok {
                    Tok::Punct('>') => depth += 1,
                    Tok::Punct('<') => depth -= 1,
                    _ => {}
                }
            }
            if depth == 0 && m >= 2 && punct_at(toks, m - 1, ':') && punct_at(toks, m - 2, ':') {
                p = m - 3;
            } else {
                continue;
            }
        }
        let Some(name) = ident_at(toks, p) else {
            continue;
        };
        if is_keyword(name) || is_numeric(name) {
            continue;
        }
        let sp = &toks[p];
        if p >= 1 && punct_at(toks, p - 1, '.') {
            // `.name(` — method call; `.0(` tuple-field calls skipped above.
            let recv = if p >= 2 {
                ident_at(toks, p - 2).map(|s| s.to_string())
            } else {
                None
            };
            out.push(CallSite {
                tok: p,
                line: sp.line,
                col: sp.col,
                callee: Callee::Method {
                    name: name.to_string(),
                    recv,
                },
            });
            continue;
        }
        // Walk a `::`-separated path backwards.
        let mut segs = vec![name.to_string()];
        let mut q = p;
        let mut qualified_head = false;
        while q >= 2 && punct_at(toks, q - 1, ':') && punct_at(toks, q - 2, ':') {
            if q >= 3 {
                if let Some(seg) = ident_at(toks, q - 3) {
                    segs.insert(0, seg.to_string());
                    q -= 3;
                    continue;
                }
            }
            // `<T as Trait>::f(` — qualified path head.
            if q >= 3 && punct_at(toks, q - 3, '>') {
                qualified_head = true;
            }
            break;
        }
        if qualified_head {
            out.push(CallSite {
                tok: p,
                line: sp.line,
                col: sp.col,
                callee: Callee::Method {
                    name: name.to_string(),
                    recv: None,
                },
            });
            continue;
        }
        if is_upper(segs.last().unwrap()) {
            // `Some(`, `Event::Arrival(` — tuple constructors, not calls.
            continue;
        }
        // A macro head would have `!` between the name and `(`; the `(`'s
        // predecessor is then `!`, so we never get here for macros.
        out.push(CallSite {
            tok: p,
            line: sp.line,
            col: sp.col,
            callee: Callee::Path(segs),
        });
    }
    out
}

/// Resolve one call site made from `f`.
fn resolve(ws: &Workspace, f: &FnDef, site: &CallSite) -> Resolution {
    let ctx = &ws.files[f.file];
    match &site.callee {
        Callee::Method { name, recv } => {
            if recv.as_deref() == Some("self") {
                if let Some(ty) = &f.type_name {
                    if let Some(targets) = ws.methods_by_type.get(&(ty.clone(), name.clone())) {
                        return Resolution::Internal(targets.clone());
                    }
                }
            }
            match ws.methods_by_name.get(name) {
                Some(targets) => Resolution::Internal(targets.clone()),
                None => Resolution::External,
            }
        }
        Callee::Path(segs) => resolve_path(ws, f, ctx, segs),
    }
}

fn resolve_path(
    ws: &Workspace,
    f: &FnDef,
    ctx: &crate::model::FileCtx,
    segs: &[String],
) -> Resolution {
    let name = segs.last().cloned().unwrap_or_default();
    if segs.len() == 1 {
        // Plain call: local module, then imports, then globs.
        if let Some(&idx) = ws.free_by_module.get(&(f.module.clone(), name.clone())) {
            return Resolution::Internal(vec![idx]);
        }
        if let Some(path) = ctx.imports.get(&name) {
            if let Some(r) = lookup_abs(ws, ctx, path) {
                return r;
            }
        }
        for g in &ctx.globs {
            let mut path = g.clone();
            path.push(name.clone());
            if let Some(r) = lookup_abs(ws, ctx, &path) {
                return r;
            }
        }
        if ws.free_by_name.contains_key(&name) || ws.methods_by_name.contains_key(&name) {
            return Resolution::Unresolved;
        }
        return Resolution::External;
    }

    let qualifier = &segs[segs.len() - 2];
    if is_upper(qualifier) {
        // `Type::func(` (or `Self::func(`).
        let ty = if qualifier == "Self" {
            match &f.type_name {
                Some(t) => t.clone(),
                None => return Resolution::External,
            }
        } else {
            qualifier.clone()
        };
        if let Some(targets) = ws.methods_by_type.get(&(ty, name.clone())) {
            return Resolution::Internal(targets.clone());
        }
        // A workspace type whose assoc fn we don't model (derived impls),
        // or a std type: external either way.
        return Resolution::External;
    }

    // Module-qualified free fn. Try absolute, crate/self/super-relative,
    // file-module-relative, and import-expanded prefixes.
    let prefix = &segs[..segs.len() - 1];
    let mut candidates: Vec<Vec<String>> = Vec::new();
    candidates.push(prefix.to_vec());
    if let Some(expanded) = expand_head(ctx, prefix) {
        candidates.push(expanded);
    }
    let mut rel = ctx.module.clone();
    rel.extend(prefix.iter().cloned());
    candidates.push(rel);
    if let Some(base) = ctx.imports.get(&prefix[0]) {
        let mut path = base.clone();
        path.extend(prefix[1..].iter().cloned());
        candidates.push(path);
    }
    for cand in candidates {
        let cand = normalize(ctx, &cand);
        let joined = cand.join("::");
        if let Some(&idx) = ws.free_by_module.get(&(joined, name.clone())) {
            return Resolution::Internal(vec![idx]);
        }
    }
    if segs[0] == "std" || segs[0] == "core" || segs[0] == "alloc" {
        return Resolution::External;
    }
    if ws.free_by_name.contains_key(&name) {
        return Resolution::Unresolved;
    }
    Resolution::External
}

/// Expand a `crate`/`self`/`super` head against the file's module path.
fn expand_head(ctx: &crate::model::FileCtx, path: &[String]) -> Option<Vec<String>> {
    let head = path.first()?;
    let mut out = match head.as_str() {
        "crate" => vec![ctx.module.first()?.clone()],
        "self" => ctx.module.clone(),
        "super" => {
            let mut m = ctx.module.clone();
            m.pop();
            m
        }
        _ => return None,
    };
    out.extend(path[1..].iter().cloned());
    Some(out)
}

fn normalize(ctx: &crate::model::FileCtx, path: &[String]) -> Vec<String> {
    expand_head(ctx, path).unwrap_or_else(|| path.to_vec())
}

/// Look up an absolute-ish path (typically from a `use`) as a free fn, or
/// as `Type::method` when the second-to-last segment is a type.
fn lookup_abs(ws: &Workspace, ctx: &crate::model::FileCtx, path: &[String]) -> Option<Resolution> {
    if path.is_empty() {
        return None;
    }
    let path = normalize(ctx, path);
    let name = path.last().cloned().unwrap_or_default();
    if path.len() >= 2 {
        let qual = &path[path.len() - 2];
        if is_upper(qual) {
            if let Some(t) = ws.methods_by_type.get(&(qual.clone(), name.clone())) {
                return Some(Resolution::Internal(t.clone()));
            }
            return None;
        }
    }
    let module = path[..path.len() - 1].join("::");
    ws.free_by_module
        .get(&(module, name))
        .map(|&idx| Resolution::Internal(vec![idx]))
}

/// Build the resolved call graph for the workspace.
pub fn build(ws: &Workspace) -> CallGraph {
    let n = ws.fns.len();
    let mut sites = Vec::with_capacity(n);
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut stats = GraphStats::default();
    for (idx, f) in ws.fns.iter().enumerate() {
        let toks = &ws.files[f.file].toks;
        let raw = extract_call_sites(toks, f.body);
        let mut resolved = Vec::with_capacity(raw.len());
        for site in raw {
            let r = resolve(ws, f, &site);
            stats.call_sites += 1;
            match &r {
                Resolution::Internal(targets) => {
                    stats.internal += 1;
                    for &t in targets {
                        edges[idx].push(t);
                    }
                }
                Resolution::External => stats.external += 1,
                Resolution::Unresolved => stats.unresolved += 1,
            }
            resolved.push((site, r));
        }
        edges[idx].sort_unstable();
        edges[idx].dedup();
        sites.push(resolved);
    }
    let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (src, outs) in edges.iter().enumerate() {
        for &dst in outs {
            redges[dst].push(src);
        }
    }
    CallGraph {
        sites,
        edges,
        redges,
        stats,
    }
}

impl CallGraph {
    /// Forward BFS from `roots`; returns (reached, parent) where `parent`
    /// lets callers reconstruct one example call chain.
    pub fn reach_forward(&self, roots: &[usize]) -> (Vec<bool>, Vec<Option<usize>>) {
        let n = self.edges.len();
        let mut seen = vec![false; n];
        let mut parent = vec![None; n];
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        (seen, parent)
    }

    /// Reverse BFS: every fn from which some fn in `sinks` is reachable
    /// (sinks included).
    pub fn reach_backward(&self, sinks: &[usize]) -> Vec<bool> {
        let n = self.redges.len();
        let mut seen = vec![false; n];
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &s in sinks {
            if !seen[s] {
                seen[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.redges[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// One example call chain root→…→`to` as fqn strings, following the
    /// BFS parents produced by [`reach_forward`].
    pub fn chain(&self, ws: &Workspace, parent: &[Option<usize>], to: usize) -> Vec<String> {
        let mut chain = vec![ws.fns[to].fqn.clone()];
        let mut cur = to;
        let mut guard = 0;
        while let Some(p) = parent[cur] {
            chain.push(ws.fns[p].fqn.clone());
            cur = p;
            guard += 1;
            if guard > 64 {
                break;
            }
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{parse_workspace, FileInput};
    use std::collections::BTreeMap;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        let inputs: Vec<FileInput> = files
            .iter()
            .map(|(p, s)| FileInput {
                path: p.to_string(),
                src: s.to_string(),
            })
            .collect();
        parse_workspace(
            &inputs,
            &BTreeMap::new(),
            &crate::PASSES,
            &grouter_lint::RULES,
        )
    }

    fn fqn_edges(ws: &Workspace, g: &CallGraph) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (i, outs) in g.edges.iter().enumerate() {
            for &j in outs {
                out.push((ws.fns[i].fqn.clone(), ws.fns[j].fqn.clone()));
            }
        }
        out
    }

    #[test]
    fn local_and_method_calls_resolve() {
        let ws = ws_of(&[(
            "crates/sim/src/x.rs",
            "fn helper() {}\nstruct S;\nimpl S {\n    fn go(&self) { helper(); self.aux(); }\n    fn aux(&self) {}\n}\n",
        )]);
        let g = build(&ws);
        let edges = fqn_edges(&ws, &g);
        assert!(edges.contains(&("sim::x::S::go".into(), "sim::x::helper".into())));
        assert!(edges.contains(&("sim::x::S::go".into(), "sim::x::S::aux".into())));
        assert_eq!(g.stats.unresolved, 0);
    }

    #[test]
    fn cross_module_calls_resolve_via_use() {
        let ws = ws_of(&[
            ("crates/sim/src/a.rs", "pub fn leaf() {}\n"),
            (
                "crates/sim/src/b.rs",
                "use crate::a::leaf;\nfn caller() { leaf(); }\n",
            ),
            (
                "crates/sim/src/c.rs",
                "fn caller2() { crate::a::leaf(); }\n",
            ),
        ]);
        let g = build(&ws);
        let edges = fqn_edges(&ws, &g);
        assert!(
            edges.contains(&("sim::b::caller".into(), "sim::a::leaf".into())),
            "{edges:?}"
        );
        assert!(
            edges.contains(&("sim::c::caller2".into(), "sim::a::leaf".into())),
            "{edges:?}"
        );
    }

    #[test]
    fn type_qualified_and_constructor_heads() {
        let ws = ws_of(&[(
            "crates/sim/src/x.rs",
            "struct S;\nimpl S { fn new() -> S { S } fn go() { let _ = S::new(); let _ = Some(1); } }\n",
        )]);
        let g = build(&ws);
        let edges = fqn_edges(&ws, &g);
        assert!(edges.contains(&("sim::x::S::go".into(), "sim::x::S::new".into())));
        // `Some(1)` is not a call site at all.
        assert_eq!(g.stats.call_sites, 1);
    }

    #[test]
    fn method_calls_bind_all_candidates() {
        let ws = ws_of(&[(
            "crates/sim/src/x.rs",
            "struct A; struct B;\nimpl A { fn poke(&self) {} }\nimpl B { fn poke(&self) {} }\nfn go(v: &A) { v.poke(); }\n",
        )]);
        let g = build(&ws);
        let edges = fqn_edges(&ws, &g);
        assert!(edges.contains(&("sim::x::go".into(), "sim::x::A::poke".into())));
        assert!(edges.contains(&("sim::x::go".into(), "sim::x::B::poke".into())));
    }

    #[test]
    fn unknown_names_split_external_vs_unresolved() {
        let ws = ws_of(&[(
            "crates/sim/src/x.rs",
            "fn twin() {}\nmod inner { fn go(f: fn()) { twin(); format_args(); } }\n",
        )]);
        // `twin` exists in the workspace but not in `inner`'s scope →
        // unresolved; `format_args` collides with nothing → external.
        let g = build(&ws);
        assert_eq!(g.stats.unresolved, 1);
        assert_eq!(g.stats.external, 1);
    }

    #[test]
    fn reachability_closures() {
        let ws = ws_of(&[(
            "crates/sim/src/x.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}\n",
        )]);
        let g = build(&ws);
        let (seen, parent) = g.reach_forward(&[0]);
        assert_eq!(seen, vec![true, true, true, false]);
        assert_eq!(
            g.chain(&ws, &parent, 2),
            vec!["sim::x::a", "sim::x::b", "sim::x::c"]
        );
        let back = g.reach_backward(&[2]);
        assert_eq!(back, vec![true, true, true, false]);
    }
}
