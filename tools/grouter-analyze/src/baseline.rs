//! The committed findings baseline (`analyze-baseline.txt`).
//!
//! Line format:
//!
//! ```text
//! <pass> <fqn> <kind> | <justification>
//! ```
//!
//! Blank lines and `#` comments are ignored. Every entry MUST carry a
//! non-empty justification; a malformed line is a hard error (a baseline
//! that does not parse must not silently admit findings). Reconciliation
//! is exact-set: findings without an entry fail the run, and entries that
//! no finding matches are *stale* and also fail the run, so the baseline
//! can only shrink truthfully.

use crate::Finding;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
pub struct Entry {
    /// `<pass> <fqn> <kind>` with single-space separators.
    pub key: String,
    pub justification: String,
    /// 1-based line in the baseline file, for error reporting.
    pub line: usize,
}

#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

/// Parse a baseline file. Returns the parsed entries or every malformed
/// line as `line N: message`.
pub fn parse(text: &str) -> Result<Baseline, Vec<String>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((left, right)) = line.split_once('|') else {
            errors.push(format!(
                "line {lineno}: missing ` | <justification>` separator"
            ));
            continue;
        };
        let fields: Vec<&str> = left.split_whitespace().collect();
        if fields.len() != 3 {
            errors.push(format!(
                "line {lineno}: expected `<pass> <fqn> <kind>` before `|`, got {} field(s)",
                fields.len()
            ));
            continue;
        }
        if !crate::PASSES.contains(&fields[0]) {
            errors.push(format!("line {lineno}: unknown pass `{}`", fields[0]));
            continue;
        }
        let justification = right.trim().to_string();
        if justification.is_empty() {
            errors.push(format!("line {lineno}: empty justification"));
            continue;
        }
        let key = fields.join(" ");
        if !seen.insert(key.clone()) {
            errors.push(format!("line {lineno}: duplicate entry `{key}`"));
            continue;
        }
        entries.push(Entry {
            key,
            justification,
            line: lineno,
        });
    }
    if errors.is_empty() {
        Ok(Baseline { entries })
    } else {
        Err(errors)
    }
}

#[derive(Debug, Default)]
pub struct Reconciliation {
    /// Indices into the findings slice with no baseline entry.
    pub unbaselined: Vec<usize>,
    /// Baseline entries no current finding matches.
    pub stale: Vec<Entry>,
    /// Findings covered by the baseline.
    pub baselined: usize,
}

pub fn reconcile(baseline: &Baseline, findings: &[Finding]) -> Reconciliation {
    let keys: BTreeSet<&str> = baseline.entries.iter().map(|e| e.key.as_str()).collect();
    let mut used: BTreeSet<String> = BTreeSet::new();
    let mut out = Reconciliation::default();
    for (i, f) in findings.iter().enumerate() {
        let key = f.baseline_key();
        if keys.contains(key.as_str()) {
            used.insert(key);
            out.baselined += 1;
        } else {
            out.unbaselined.push(i);
        }
    }
    for e in &baseline.entries {
        if !used.contains(&e.key) {
            out.stale.push(e.clone());
        }
    }
    out
}

/// Render a baseline skeleton covering `findings` (one line per distinct
/// key, justification left as a TODO for the author to fill in).
pub fn emit(findings: &[Finding]) -> String {
    let mut keys: Vec<String> = findings.iter().map(|f| f.baseline_key()).collect();
    keys.sort();
    keys.dedup();
    let mut out = String::from(
        "# grouter-analyze baseline: `<pass> <fqn> <kind> | <justification>` per line.\n",
    );
    for k in keys {
        out.push_str(&k);
        out.push_str(" | TODO: justify\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: &'static str, func: &str, kind: &str) -> Finding {
        Finding {
            pass,
            func: func.into(),
            file: "crates/sim/src/x.rs".into(),
            line: 1,
            col: 1,
            kind: kind.into(),
            message: String::new(),
        }
    }

    #[test]
    fn parse_accepts_comments_and_entries() {
        let b = parse(
            "# header\n\npanic-reachable sim::x::f unwrap | slab ids are live by construction\n",
        )
        .unwrap();
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].key, "panic-reachable sim::x::f unwrap");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let errs = parse(
            "panic-reachable sim::x::f unwrap\nnot-a-pass a b | x\npanic-reachable toofew | x\npanic-reachable sim::x::f unwrap |   \n",
        )
        .unwrap_err();
        assert_eq!(errs.len(), 4, "{errs:?}");
    }

    #[test]
    fn reconcile_splits_covered_new_and_stale() {
        let b = parse(
            "panic-reachable sim::x::f unwrap | fine\nwallclock-reachable sim::x::gone instant-now | was removed\n",
        )
        .unwrap();
        let findings = vec![
            finding("panic-reachable", "sim::x::f", "unwrap"),
            finding("determinism-taint", "sim::x::g", "hash-iter->metrics"),
        ];
        let r = reconcile(&b, &findings);
        assert_eq!(r.baselined, 1);
        assert_eq!(r.unbaselined, vec![1]);
        assert_eq!(r.stale.len(), 1);
        assert!(r.stale[0].key.contains("sim::x::gone"));
    }

    #[test]
    fn emit_dedups_keys() {
        let findings = vec![
            finding("panic-reachable", "sim::x::f", "unwrap"),
            finding("panic-reachable", "sim::x::f", "unwrap"),
        ];
        let s = emit(&findings);
        assert_eq!(s.matches("sim::x::f").count(), 1);
    }
}
