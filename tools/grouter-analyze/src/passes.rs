//! The three interprocedural passes: panic-reachability,
//! wallclock-reachability, and determinism taint.
//!
//! * **panic-reachable** — every `panic!`-class macro, `.unwrap()`/
//!   `.expect()`, and non-literal indexing/slicing site inside a function
//!   transitively reachable from a data-plane entry point
//!   ([`crate::ENTRY_TYPES`]). Sites already justified by a
//!   `grouter-lint: allow(no-panic-in-dataplane)` pragma are considered
//!   documented invariants and are not re-reported.
//! * **wallclock-reachable** — `Instant::now`/`SystemTime` sites in the
//!   same closure; honors `allow(no-wallclock-in-sim)` pragmas.
//! * **determinism-taint** — sources are hash-container iteration, `{:p}`
//!   pointer formatting, thread-id reads, and `spawn`ed-thread joins;
//!   sinks are metric emission, obs trace emission, event scheduling, and
//!   cross-shard envelope construction. A source followed (in the same
//!   function, before any sort/canonicalization) by a direct sink or by a
//!   call into a sink-reaching function is a finding.

use crate::graph::{CallGraph, Resolution};
use crate::model::Workspace;
use crate::{Finding, ENTRY_TYPES};
use grouter_lint::common::{Pragma, Sp, Tok};

/// Sink categories, as bits so a fn's reachable-sink set is one byte.
pub const SINK_CATS: [(&str, u8); 4] =
    [("metrics", 1), ("obs", 2), ("schedule", 4), ("envelope", 8)];

const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

const SANITIZER_METHODS: [&str; 10] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "min",
    "max",
    "sum",
    "len",
];

const METRIC_SINKS: [&str; 3] = ["record", "to_csv", "intern"];
const OBS_SINKS_ANY: [&str; 3] = ["instant", "instant_at", "sample"];
/// Obs methods whose names are too generic to trust without a recorder
/// receiver (`rec`/`obs`/`recorder`).
const OBS_SINKS_RECV: [&str; 3] = ["begin", "end", "count"];
const OBS_RECEIVERS: [&str; 3] = ["rec", "obs", "recorder"];
const SCHEDULE_SINKS: [&str; 7] = [
    "schedule",
    "schedule_at",
    "schedule_in",
    "schedule_now",
    "schedule_boxed",
    "schedule_boxed_in",
    "schedule_boxed_now",
];
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

#[derive(Debug, Clone)]
pub struct Site {
    pub tok: usize,
    pub line: usize,
    pub col: usize,
    pub kind: &'static str,
    pub what: String,
}

/// Everything one body scan yields.
#[derive(Debug, Default)]
pub struct BodyScan {
    pub panics: Vec<Site>,
    pub wallclocks: Vec<Site>,
    pub sources: Vec<Site>,
    pub sanitizers: Vec<usize>,
    /// (token, category bit, description)
    pub sinks: Vec<(usize, u8, String)>,
}

fn ident_at(toks: &[Sp], i: usize) -> Option<&str> {
    match toks.get(i).map(|s| &s.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Sp], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|s| &s.tok), Some(Tok::Punct(p)) if *p == c)
}

fn is_numeric(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_digit() || c == '_')
}

/// Scan one function body for every site the passes care about. `hashy`
/// is the file's set of hash-container-typed identifiers.
pub fn scan_body(
    toks: &[Sp],
    body: (usize, usize),
    hashy: &std::collections::BTreeSet<String>,
) -> BodyScan {
    let (lo, hi) = body;
    let mut out = BodyScan::default();
    for i in lo..hi {
        let sp = &toks[i];
        match &sp.tok {
            Tok::Str(s) if s.contains("{:p}") => {
                out.sources.push(Site {
                    tok: i,
                    line: sp.line,
                    col: sp.col,
                    kind: "ptr-format",
                    what: "`{:p}` pointer formatting".into(),
                });
            }
            Tok::Punct('[') => {
                // Indexing/slicing: `recv[...]` where recv is an ident,
                // `)`, or `]`. Single-literal indexes (`arr[0]`) are
                // assumed bounded by construction.
                let prev_ok = i > lo
                    && (punct_at(toks, i - 1, ')')
                        || punct_at(toks, i - 1, ']')
                        || ident_at(toks, i - 1)
                            .is_some_and(|s| !crate::model::is_keyword(s) && !is_numeric(s)));
                if !prev_ok {
                    continue;
                }
                // Find the matching `]` and classify the content.
                let mut depth = 0i32;
                let mut j = i;
                while j < hi {
                    match toks[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let inner = &toks[i + 1..j.min(hi)];
                let literal_only =
                    inner.len() == 1 && matches!(&inner[0].tok, Tok::Ident(s) if is_numeric(s));
                let full_range = inner.len() == 2
                    && matches!(inner[0].tok, Tok::Punct('.'))
                    && matches!(inner[1].tok, Tok::Punct('.'));
                let empty = inner.is_empty();
                if !literal_only && !full_range && !empty {
                    let recv = ident_at(toks, i - 1).unwrap_or("<expr>");
                    out.panics.push(Site {
                        tok: i,
                        line: sp.line,
                        col: sp.col,
                        kind: "index",
                        what: format!("indexing `{recv}[..]`"),
                    });
                }
            }
            Tok::Ident(name) => {
                let name = name.as_str();
                // Macro sites: `name!`.
                if PANIC_MACROS.contains(&name) && punct_at(toks, i + 1, '!') {
                    out.panics.push(Site {
                        tok: i,
                        line: sp.line,
                        col: sp.col,
                        kind: "panic-macro",
                        what: format!("`{name}!`"),
                    });
                    continue;
                }
                // Method-shaped sites: `.name(`.
                let is_method = i > lo && punct_at(toks, i - 1, '.') && punct_at(toks, i + 1, '(');
                let recv = if is_method && i >= 2 {
                    ident_at(toks, i - 2)
                } else {
                    None
                };
                if is_method {
                    if matches!(name, "unwrap" | "expect") {
                        out.panics.push(Site {
                            tok: i,
                            line: sp.line,
                            col: sp.col,
                            kind: "unwrap",
                            what: format!("`.{name}()`"),
                        });
                    }
                    if SANITIZER_METHODS.contains(&name) {
                        out.sanitizers.push(i);
                    }
                    if ITER_METHODS.contains(&name) && recv.is_some_and(|r| hashy.contains(r)) {
                        out.sources.push(Site {
                            tok: i,
                            line: sp.line,
                            col: sp.col,
                            kind: "hash-iter",
                            what: format!(
                                "unordered iteration `{}.{}()`",
                                recv.unwrap_or("?"),
                                name
                            ),
                        });
                    }
                    if METRIC_SINKS.contains(&name) {
                        out.sinks.push((i, 1, format!(".{name}(")));
                    }
                    if OBS_SINKS_ANY.contains(&name)
                        || (OBS_SINKS_RECV.contains(&name)
                            && recv.is_some_and(|r| OBS_RECEIVERS.contains(&r)))
                    {
                        out.sinks.push((i, 2, format!(".{name}(")));
                    }
                    if SCHEDULE_SINKS.contains(&name) {
                        out.sinks.push((i, 4, format!(".{name}(")));
                    }
                    // `handle.join()` after a spawn is covered by the
                    // spawn source below.
                }
                // `spawn(`, `thread::spawn(`, `s.spawn(`.
                if name == "spawn" && punct_at(toks, i + 1, '(') {
                    out.sources.push(Site {
                        tok: i,
                        line: sp.line,
                        col: sp.col,
                        kind: "spawn-join",
                        what: "spawned-thread join order".into(),
                    });
                }
                // `thread::current().id()` / stored ThreadId.
                if name == "current"
                    && punct_at(toks, i + 1, '(')
                    && punct_at(toks, i + 2, ')')
                    && punct_at(toks, i + 3, '.')
                    && ident_at(toks, i + 4) == Some("id")
                {
                    out.sources.push(Site {
                        tok: i,
                        line: sp.line,
                        col: sp.col,
                        kind: "thread-id",
                        what: "`thread::current().id()`".into(),
                    });
                }
                if name == "ThreadId" {
                    out.sources.push(Site {
                        tok: i,
                        line: sp.line,
                        col: sp.col,
                        kind: "thread-id",
                        what: "`ThreadId` value".into(),
                    });
                }
                // Wallclock reads.
                if name == "Instant"
                    && punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':')
                    && ident_at(toks, i + 3) == Some("now")
                {
                    out.wallclocks.push(Site {
                        tok: i,
                        line: sp.line,
                        col: sp.col,
                        kind: "instant-now",
                        what: "`Instant::now`".into(),
                    });
                }
                if name == "SystemTime" {
                    out.wallclocks.push(Site {
                        tok: i,
                        line: sp.line,
                        col: sp.col,
                        kind: "systemtime",
                        what: "`SystemTime`".into(),
                    });
                }
                // Sanitizing collections: collecting into an ordered map
                // anywhere downstream of the source canonicalizes it.
                if name == "BTreeMap" || name == "BTreeSet" {
                    out.sanitizers.push(i);
                }
                // Cross-shard envelope construction.
                if name == "Envelope" && punct_at(toks, i + 1, '{') {
                    out.sinks.push((i, 8, "Envelope { .. }".into()));
                }
                // `for pat in <expr over a hash container> {`.
                if name == "for" {
                    let mut j = i + 1;
                    let mut depth = 0i32;
                    while j < hi {
                        match &toks[j].tok {
                            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                            Tok::Ident(s) if s == "in" && depth == 0 => break,
                            Tok::Punct('{') => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if ident_at(toks, j) == Some("in") {
                        let mut k = j + 1;
                        while k < hi && !punct_at(toks, k, '{') {
                            if let Some(e) = ident_at(toks, k) {
                                if hashy.contains(e) {
                                    // Methods chained off the container
                                    // (e.g. `.len()`) are handled above;
                                    // a bare `&map` iterates it.
                                    let followed_by_call = punct_at(toks, k + 1, '.');
                                    if !followed_by_call {
                                        let sp = &toks[k];
                                        out.sources.push(Site {
                                            tok: k,
                                            line: sp.line,
                                            col: sp.col,
                                            kind: "hash-iter",
                                            what: format!("unordered iteration `for .. in {e}`"),
                                        });
                                    }
                                }
                            }
                            k += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn pragma_suppresses(pragmas: &[Pragma], rule: &str, lines: &[usize]) -> bool {
    pragmas.iter().any(|p| {
        p.justified
            && p.parse_error.is_none()
            && p.rules.iter().any(|r| r == rule)
            && lines.iter().any(|&l| p.line == l || p.line + 1 == l)
    })
}

fn cats_of(mask: u8) -> Vec<&'static str> {
    SINK_CATS
        .iter()
        .filter(|(_, b)| mask & b != 0)
        .map(|(n, _)| *n)
        .collect()
}

fn short_chain(chain: &[String]) -> String {
    let named: Vec<&str> = chain.iter().map(|s| s.as_str()).collect();
    if named.len() <= 4 {
        named.join(" → ")
    } else {
        format!(
            "{} → {} → … → {}",
            named[0],
            named[1],
            named[named.len() - 1]
        )
    }
}

/// Run all three passes. `scans` must be indexed like `ws.fns`.
pub fn run(ws: &Workspace, graph: &CallGraph, scans: &[BodyScan]) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();

    // Entry points: unmasked methods of the data-plane entry types.
    let entries: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.masked
                && f.type_name
                    .as_deref()
                    .is_some_and(|t| ENTRY_TYPES.contains(&t))
        })
        .map(|(i, _)| i)
        .collect();
    let (reached, parent) = graph.reach_forward(&entries);

    // Panic- and wallclock-reachability.
    for (idx, f) in ws.fns.iter().enumerate() {
        if !reached[idx] || f.masked {
            continue;
        }
        let ctx = &ws.files[f.file];
        let chain = short_chain(&graph.chain(ws, &parent, idx));
        for site in &scans[idx].panics {
            let lines = [site.line, f.line];
            if pragma_suppresses(&ctx.lint_pragmas, "no-panic-in-dataplane", &[site.line])
                || pragma_suppresses(&ctx.pragmas, "panic-reachable", &lines)
            {
                continue;
            }
            findings.push(Finding {
                pass: "panic-reachable",
                func: f.fqn.clone(),
                file: ctx.path.clone(),
                line: site.line,
                col: site.col,
                kind: site.kind.to_string(),
                message: format!(
                    "{} can panic and is reachable from a data-plane entry point ({})",
                    site.what, chain
                ),
            });
        }
        for site in &scans[idx].wallclocks {
            let lines = [site.line, f.line];
            if pragma_suppresses(&ctx.lint_pragmas, "no-wallclock-in-sim", &[site.line])
                || pragma_suppresses(&ctx.pragmas, "wallclock-reachable", &lines)
            {
                continue;
            }
            findings.push(Finding {
                pass: "wallclock-reachable",
                func: f.fqn.clone(),
                file: ctx.path.clone(),
                line: site.line,
                col: site.col,
                kind: site.kind.to_string(),
                message: format!(
                    "{} reads wall-clock time on a sim-driven path ({})",
                    site.what, chain
                ),
            });
        }
    }

    // Determinism taint: per-category sink-reaching closures.
    let mut sink_mask = vec![0u8; ws.fns.len()];
    for (_, bit) in SINK_CATS {
        let sinks: Vec<usize> = scans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.sinks.iter().any(|(_, b, _)| b & bit != 0))
            .map(|(i, _)| i)
            .collect();
        for (i, hit) in graph.reach_backward(&sinks).into_iter().enumerate() {
            if hit {
                sink_mask[i] |= bit;
            }
        }
    }

    for (idx, f) in ws.fns.iter().enumerate() {
        if f.masked {
            continue;
        }
        let ctx = &ws.files[f.file];
        let scan = &scans[idx];
        for src in &scan.sources {
            let san = scan
                .sanitizers
                .iter()
                .copied()
                .filter(|&s| s > src.tok)
                .min()
                .unwrap_or(usize::MAX);
            let mut mask = 0u8;
            let mut via: Option<String> = None;
            for (tok, bit, what) in &scan.sinks {
                if *tok > src.tok && *tok < san {
                    mask |= bit;
                    via.get_or_insert_with(|| format!("direct sink `{what}`"));
                }
            }
            for (site, res) in &graph.sites[idx] {
                if site.tok <= src.tok || site.tok >= san {
                    continue;
                }
                if let Resolution::Internal(targets) = res {
                    for &t in targets {
                        if sink_mask[t] != 0 {
                            mask |= sink_mask[t];
                            via.get_or_insert_with(|| {
                                format!("call into sink-reaching `{}`", ws.fns[t].fqn)
                            });
                        }
                    }
                }
            }
            if mask == 0 {
                continue;
            }
            let lines = [src.line, f.line];
            if pragma_suppresses(&ctx.pragmas, "determinism-taint", &lines) {
                continue;
            }
            let cats = cats_of(mask).join("+");
            findings.push(Finding {
                pass: "determinism-taint",
                func: f.fqn.clone(),
                file: ctx.path.clone(),
                line: src.line,
                col: src.col,
                kind: format!("{}->{}", src.kind, cats),
                message: format!(
                    "{} can reach {} emission without an intervening sort/canonicalization ({})",
                    src.what,
                    cats,
                    via.unwrap_or_else(|| "sink".into())
                ),
            });
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.pass, &a.kind).cmp(&(&b.file, b.line, b.col, b.pass, &b.kind))
    });
    (findings, entries.len())
}
