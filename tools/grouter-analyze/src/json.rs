//! Hand-rolled JSON emission for machine-readable diagnostics (the build
//! environment is offline, so no serde). Output is deterministic: findings
//! arrive pre-sorted and stats are a fixed-shape object.

use crate::Report;

/// Escape a string per JSON. Only the escapes the analyzer can actually
/// produce (quotes, backslashes, control chars) are handled.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the full report as a JSON document.
pub fn render(r: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in r.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": \"{}\", \"func\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"kind\": \"{}\", \"message\": \"{}\"}}",
            escape(f.pass),
            escape(&f.func),
            escape(&f.file),
            f.line,
            f.col,
            escape(&f.kind),
            escape(&f.message),
        ));
    }
    if !r.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"stats\": {{\"files\": {}, \"functions\": {}, \"entry_points\": {}, \"call_sites\": {}, \"internal\": {}, \"external\": {}, \"unresolved\": {}, \"resolution_rate\": {:.4}}},\n",
        r.files,
        r.functions,
        r.entry_points,
        r.stats.call_sites,
        r.stats.internal,
        r.stats.external,
        r.stats.unresolved,
        r.stats.resolution_rate(),
    ));
    out.push_str("  \"pragma_errors\": [");
    for (i, e) in r.pragma_errors.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", escape(e)));
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphStats;
    use crate::Finding;

    #[test]
    fn renders_valid_shape_and_escapes() {
        let r = Report {
            findings: vec![Finding {
                pass: "determinism-taint",
                func: "sim::x::f".into(),
                file: "crates/sim/src/x.rs".into(),
                line: 3,
                col: 9,
                kind: "hash-iter->metrics".into(),
                message: "a \"quoted\" chain".into(),
            }],
            stats: GraphStats {
                call_sites: 10,
                internal: 8,
                external: 1,
                unresolved: 1,
            },
            files: 2,
            functions: 5,
            entry_points: 1,
            pragma_errors: vec![],
        };
        let s = render(&r);
        assert!(s.contains("\"kind\": \"hash-iter->metrics\""));
        assert!(s.contains("a \\\"quoted\\\" chain"));
        assert!(s.contains("\"resolution_rate\": 0.9000"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
