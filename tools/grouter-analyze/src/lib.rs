//! grouter-analyze: interprocedural call-graph + determinism-taint
//! analysis for the GROUTER workspace.
//!
//! Zero dependencies beyond `grouter-lint` (which contributes the shared
//! lexer, pragma parser, and file walker). The analyzer parses every
//! workspace source file into a lightweight item model ([`model`]), builds
//! a name-resolved call graph ([`graph`]), and runs three passes
//! ([`passes`]): panic-reachability and wallclock-reachability from the
//! data-plane entry types, and function-local determinism taint from
//! unordered sources to metric/obs/schedule/envelope sinks.
//!
//! Known findings live in `analyze-baseline.txt` at the repo root; every
//! entry carries a justification. The CLI exits non-zero on any
//! unbaselined finding, stale baseline entry, bad pragma, or a call-site
//! resolution rate below the configured floor.

pub mod baseline;
pub mod graph;
pub mod json;
pub mod model;
pub mod passes;

pub use model::FileInput;

use std::collections::BTreeMap;
use std::fmt;

/// The three analysis passes, in report order. Pragmas
/// (`// grouter-analyze: allow(<pass>): why`) must name one of these.
pub const PASSES: [&str; 3] = [
    "panic-reachable",
    "wallclock-reachable",
    "determinism-taint",
];

/// Data-plane entry types: every unmasked method of these types seeds the
/// forward reachability used by the panic/wallclock passes.
pub const ENTRY_TYPES: [&str; 6] = [
    "TransferEngine",
    "FlowNet",
    "GrouterPlane",
    "Runtime",
    "World",
    "ShardedEngine",
];

/// Comment prefix for suppression pragmas.
pub const PRAGMA_PREFIX: &str = "grouter-analyze:";

/// One finding from one pass, anchored to a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub pass: &'static str,
    /// Fully-qualified name of the containing function.
    pub func: String,
    pub file: String,
    pub line: usize,
    pub col: usize,
    /// Pass-specific kind, e.g. `unwrap` or `hash-iter->metrics`.
    pub kind: String,
    pub message: String,
}

impl Finding {
    /// Baseline key: stable across line churn, one entry covers all sites
    /// of the same kind in the same function.
    pub fn baseline_key(&self) -> String {
        format!("{} {} {}", self.pass, self.func, self.kind)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}/{}] {}: {}",
            self.file, self.line, self.col, self.pass, self.kind, self.func, self.message
        )
    }
}

/// Full analysis output.
pub struct Report {
    pub findings: Vec<Finding>,
    pub stats: graph::GraphStats,
    pub files: usize,
    pub functions: usize,
    pub entry_points: usize,
    /// Malformed or unjustified `grouter-analyze:` pragmas, pre-formatted
    /// as `path:line: message`. Always fatal: a suppression that does not
    /// parse must not silently suppress nothing.
    pub pragma_errors: Vec<String>,
}

/// Run the full analysis over `files`. `crate_names` maps directories
/// under `crates/` to crate identifiers (e.g. `core` → `grouter`).
pub fn analyze(files: &[FileInput], crate_names: &BTreeMap<String, String>) -> Report {
    let ws = model::parse_workspace(files, crate_names, &PASSES, &grouter_lint::RULES);
    let g = graph::build(&ws);
    let scans: Vec<passes::BodyScan> = ws
        .fns
        .iter()
        .map(|f| {
            let ctx = &ws.files[f.file];
            passes::scan_body(&ctx.toks, f.body, &ctx.hashy)
        })
        .collect();
    let (findings, entry_points) = passes::run(&ws, &g, &scans);

    let mut pragma_errors = Vec::new();
    for ctx in &ws.files {
        for p in &ctx.pragmas {
            if let Some(err) = &p.parse_error {
                pragma_errors.push(format!("{}:{}: {}", ctx.path, p.line, err));
            } else if !p.justified {
                pragma_errors.push(format!(
                    "{}:{}: grouter-analyze pragma needs a justification (`allow(<pass>): why`)",
                    ctx.path, p.line
                ));
            }
        }
    }

    Report {
        findings,
        stats: g.stats.clone(),
        files: ws.files.len(),
        functions: ws.fns.len(),
        entry_points,
        pragma_errors,
    }
}

/// Single-source convenience used by the fixture harness.
pub fn analyze_source(path: &str, src: &str) -> Report {
    analyze(
        &[FileInput {
            path: path.to_string(),
            src: src.to_string(),
        }],
        &BTreeMap::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_reachable_fires_through_a_call_chain() {
        let r = analyze_source(
            "crates/transfer/src/engine.rs",
            "pub struct TransferEngine;\nimpl TransferEngine {\n    pub fn admit(&mut self) { stage(); }\n}\nfn stage() { finish(); }\nfn finish(x: Option<u32>) { let _ = x.unwrap(); }\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        let f = &r.findings[0];
        assert_eq!(f.pass, "panic-reachable");
        assert_eq!(f.kind, "unwrap");
        assert_eq!(f.func, "transfer::engine::finish");
        assert!(f.message.contains("TransferEngine::admit"), "{}", f.message);
    }

    #[test]
    fn unreached_panics_are_quiet() {
        let r = analyze_source(
            "crates/transfer/src/engine.rs",
            "pub struct TransferEngine;\nimpl TransferEngine {\n    pub fn admit(&mut self) {}\n}\nfn lonely(x: Option<u32>) { let _ = x.unwrap(); }\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn taint_fires_on_hash_iteration_into_metrics() {
        let r = analyze_source(
            "crates/obs/src/rec.rs",
            "struct M { pending: FxHashMap<u64, u32> }\nimpl M {\n    fn flush(&self, table: &mut Table) {\n        for (k, v) in self.pending.iter() {\n            table.record(*k, *v);\n        }\n    }\n}\n",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].pass, "determinism-taint");
        assert_eq!(r.findings[0].kind, "hash-iter->metrics");
    }

    #[test]
    fn taint_is_quiet_after_a_sort() {
        let r = analyze_source(
            "crates/obs/src/rec.rs",
            "struct M { pending: FxHashMap<u64, u32> }\nimpl M {\n    fn flush(&self, table: &mut Table) {\n        let mut rows: Vec<_> = self.pending.iter().collect();\n        rows.sort();\n        for (k, v) in rows {\n            table.record(*k, *v);\n        }\n    }\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn bad_pragmas_are_fatal() {
        let r = analyze_source(
            "crates/sim/src/x.rs",
            "// grouter-analyze: allow(panic-reachable)\nfn f() {}\n",
        );
        assert_eq!(r.pragma_errors.len(), 1, "{:?}", r.pragma_errors);
    }

    #[test]
    fn baseline_key_is_line_independent() {
        let f = Finding {
            pass: "determinism-taint",
            func: "sim::x::f".into(),
            file: "crates/sim/src/x.rs".into(),
            line: 10,
            col: 3,
            kind: "hash-iter->obs".into(),
            message: String::new(),
        };
        assert_eq!(
            f.baseline_key(),
            "determinism-taint sim::x::f hash-iter->obs"
        );
    }
}
