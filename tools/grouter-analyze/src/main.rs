//! CLI driver for grouter-analyze.
//!
//! Usage:
//!
//! ```text
//! grouter-analyze [--baseline FILE] [--json FILE] [--min-resolution R]
//!                 [--emit-baseline] [ROOT...]
//! ```
//!
//! Roots default to `crates`. Exit codes: 0 clean (all findings baselined,
//! resolution at or above the floor), 1 findings/stale entries/bad pragmas/
//! low resolution, 2 usage or I/O error.

use grouter_analyze::{analyze, baseline, json, FileInput};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

struct Args {
    roots: Vec<String>,
    baseline: Option<String>,
    json: Option<String>,
    min_resolution: Option<f64>,
    emit_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        roots: Vec::new(),
        baseline: None,
        json: None,
        min_resolution: None,
        emit_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                out.baseline = Some(it.next().ok_or("--baseline needs a file argument")?)
            }
            "--json" => out.json = Some(it.next().ok_or("--json needs a file argument")?),
            "--min-resolution" => {
                let v = it.next().ok_or("--min-resolution needs a value")?;
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("--min-resolution: not a number: {v}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("--min-resolution out of range [0,1]: {v}"));
                }
                out.min_resolution = Some(r);
            }
            "--emit-baseline" => out.emit_baseline = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag: {flag}")),
            root => out.roots.push(root.to_string()),
        }
    }
    if out.roots.is_empty() {
        out.roots.push("crates".to_string());
    }
    Ok(out)
}

/// Map each directory under a `crates/`-style root to its crate identifier
/// by reading `name = "..."` from its Cargo.toml (e.g. `core` → `grouter`).
fn crate_names(roots: &[String]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for root in roots {
        let Ok(entries) = std::fs::read_dir(root) else {
            continue;
        };
        for entry in entries.flatten() {
            let dir = entry.path();
            if !dir.is_dir() {
                continue;
            }
            let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
                continue;
            };
            for line in manifest.lines() {
                let line = line.trim();
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start().trim_start_matches('=').trim();
                    let name = rest.trim_matches('"');
                    if !name.is_empty() {
                        out.insert(
                            entry.file_name().to_string_lossy().to_string(),
                            name.replace('-', "_"),
                        );
                    }
                    break;
                }
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("grouter-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    let paths = match grouter_lint::common::walk_rs_files(&args.roots) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("grouter-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        match std::fs::read_to_string(p) {
            Ok(src) => files.push(FileInput {
                path: p.display().to_string().replace('\\', "/"),
                src,
            }),
            Err(e) => {
                eprintln!("grouter-analyze: read {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
    }

    let report = analyze(&files, &crate_names(&args.roots));

    if args.emit_baseline {
        print!("{}", baseline::emit(&report.findings));
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    for e in &report.pragma_errors {
        eprintln!("{e}");
        failed = true;
    }

    let (unbaselined, stale, baselined) = match &args.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("grouter-analyze: read baseline {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match baseline::parse(&text) {
                Ok(b) => {
                    let r = baseline::reconcile(&b, &report.findings);
                    (r.unbaselined, r.stale, r.baselined)
                }
                Err(errs) => {
                    for e in errs {
                        eprintln!("{path}: {e}");
                    }
                    return ExitCode::from(2);
                }
            }
        }
        None => ((0..report.findings.len()).collect(), Vec::new(), 0),
    };

    for &i in &unbaselined {
        eprintln!("{}", report.findings[i]);
        failed = true;
    }
    for e in &stale {
        eprintln!(
            "{}:{}: stale baseline entry (no matching finding): {}",
            args.baseline.as_deref().unwrap_or("baseline"),
            e.line,
            e.key
        );
        failed = true;
    }

    let rate = report.stats.resolution_rate();
    if let Some(min) = args.min_resolution {
        if rate < min {
            eprintln!(
                "grouter-analyze: call-site resolution rate {:.1}% below floor {:.1}%",
                rate * 100.0,
                min * 100.0
            );
            failed = true;
        }
    }

    if let Some(path) = &args.json {
        let doc = json::render(&report);
        let res = if path == "-" {
            print!("{doc}");
            Ok(())
        } else {
            std::fs::write(Path::new(path), doc)
        };
        if let Err(e) = res {
            eprintln!("grouter-analyze: write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    eprintln!(
        "grouter-analyze: {} files, {} fns, {} entry points, {} call sites ({} unresolved, resolution {:.1}%), {} finding(s) ({} baselined, {} new, {} stale)",
        report.files,
        report.functions,
        report.entry_points,
        report.stats.call_sites,
        report.stats.unresolved,
        rate * 100.0,
        report.findings.len(),
        baselined,
        unbaselined.len(),
        stale.len()
    );

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
