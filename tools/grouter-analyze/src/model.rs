//! The lightweight item model: every workspace source file parsed into
//! functions (free, inherent-impl, trait-impl, trait-default), module
//! paths, `use` imports, and hash-container-typed names.
//!
//! This is deliberately NOT a Rust parser — it is a cursor over the shared
//! lexer's token stream that understands exactly the item grammar the
//! workspace uses: `fn`, `impl [Trait for] Type`, `trait`, inline `mod`,
//! `use` trees, `struct`/`enum` field lists, and `const`/`static`/
//! `macro_rules!` skipping. Everything it punts on is listed in
//! DESIGN.md §5.8 (soundness caveats).

use grouter_lint::common::{cfg_test_mask, parse_pragmas, tokenize, Pragma, Sp, Tok};
use std::collections::{BTreeMap, BTreeSet};

/// One source file to analyze. `path` is the path the model sees (fixtures
/// impersonate in-tree locations via `//@ path:` headers).
pub struct FileInput {
    pub path: String,
    pub src: String,
}

/// Per-file context retained for resolution and the passes.
pub struct FileCtx {
    pub path: String,
    /// Module path of the file root, e.g. `["grouter_sim", "flownet"]`.
    pub module: Vec<String>,
    /// Under a `tests/` or `benches/` directory: never an entry point and
    /// never a finding source.
    pub masked_file: bool,
    pub toks: Vec<Sp>,
    pub cfg_mask: Vec<bool>,
    /// `use` imports: leaf (or `as` alias) → full path segments.
    pub imports: BTreeMap<String, Vec<String>>,
    /// `use path::*` glob targets.
    pub globs: Vec<Vec<String>>,
    /// Identifiers declared anywhere in the file with a hash-container
    /// type (`HashMap`/`HashSet`/`FxHashMap`/`FxHashSet`), via `name: Type`
    /// ascription (params, fields, lets) or `name = FxHashMap::default()`.
    pub hashy: BTreeSet<String>,
    /// `grouter-analyze:` pragmas in this file.
    pub pragmas: Vec<Pragma>,
    /// `grouter-lint:` pragmas — honored by the panic/wallclock passes so
    /// an invariant justified once in-source is not re-reported.
    pub lint_pragmas: Vec<Pragma>,
}

/// A function definition in the item model.
pub struct FnDef {
    pub file: usize,
    /// `module::Type::name` or `module::name`; `#N` appended on collision
    /// (e.g. `fmt` from two trait impls on one type).
    pub fqn: String,
    pub name: String,
    /// Impl-block type (or trait, for default methods) this fn belongs to.
    pub type_name: Option<String>,
    /// Trait being implemented, when inside `impl Trait for Type`.
    pub trait_name: Option<String>,
    pub module: String,
    pub line: usize,
    pub col: usize,
    /// Token-index range of the body, exclusive of the braces.
    pub body: (usize, usize),
    /// In a `#[cfg(test)]` region or a tests/benches file.
    pub masked: bool,
}

/// The parsed workspace: all functions plus the lookup tables resolution
/// uses. All tables are ordered so analysis output is deterministic.
pub struct Workspace {
    pub files: Vec<FileCtx>,
    pub fns: Vec<FnDef>,
    /// (type name, method name) → fn indices (all impls, all modules).
    pub methods_by_type: BTreeMap<(String, String), Vec<usize>>,
    /// Method name → fn indices across every impl/trait block.
    pub methods_by_name: BTreeMap<String, Vec<usize>>,
    /// (module path joined with `::`, fn name) → fn index, free fns only.
    pub free_by_module: BTreeMap<(String, String), usize>,
    /// Free-fn name → fn indices.
    pub free_by_name: BTreeMap<String, Vec<usize>>,
}

const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Keywords that look like call heads or bindings but are not.
pub const KEYWORDS: [&str; 22] = [
    "fn", "if", "else", "while", "for", "in", "match", "return", "loop", "let", "mut", "ref",
    "move", "as", "use", "pub", "where", "impl", "dyn", "box", "unsafe", "await",
];

pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Derive the module path for a file. `crates/<dir>/src/a/b.rs` becomes
/// `[crate_ident(dir), "a", "b"]`; `lib.rs` and `mod.rs` terminate at their
/// directory; `main.rs` and `src/bin/x.rs` get a `__main`/`__bin_x` leaf so
/// binary-crate items never collide with the library's.
fn module_path(path: &str, crate_names: &BTreeMap<String, String>) -> (Vec<String>, bool) {
    let norm = path.replace('\\', "/");
    let segs: Vec<&str> = norm.split('/').filter(|s| !s.is_empty()).collect();
    let masked = segs.iter().any(|&s| s == "tests" || s == "benches");
    let Some(cpos) = segs.iter().position(|&s| s == "crates") else {
        // Not under crates/: treat the stem as a standalone module.
        let stem = segs
            .last()
            .map(|s| s.trim_end_matches(".rs"))
            .unwrap_or("unknown");
        return (vec![stem.replace('-', "_")], masked);
    };
    let dir = segs.get(cpos + 1).copied().unwrap_or("unknown");
    let ident = crate_names
        .get(dir)
        .cloned()
        .unwrap_or_else(|| dir.replace('-', "_"));
    let mut out = vec![ident];
    let rest: Vec<&str> = segs[cpos + 2..].to_vec();
    // Everything after `src/`; tests/benches files get their own leaf.
    let body: Vec<&str> = match rest.iter().position(|&s| s == "src") {
        Some(spos) => rest[spos + 1..].to_vec(),
        None => rest,
    };
    for (i, seg) in body.iter().enumerate() {
        let last = i + 1 == body.len();
        if last {
            let stem = seg.trim_end_matches(".rs");
            match stem {
                "lib" | "mod" => {}
                "main" => out.push("__main".into()),
                _ => out.push(stem.replace('-', "_")),
            }
        } else if *seg == "bin" {
            out.push("__bin".into());
        } else {
            out.push(seg.replace('-', "_"));
        }
    }
    (out, masked)
}

struct Parser<'a> {
    toks: &'a [Sp],
    cfg_mask: &'a [bool],
    file: usize,
    masked_file: bool,
    fns: Vec<FnDef>,
    imports: BTreeMap<String, Vec<String>>,
    globs: Vec<Vec<String>>,
}

impl<'a> Parser<'a> {
    fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|s| &s.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.toks.get(i).map(|s| &s.tok), Some(Tok::Punct(p)) if *p == c)
    }

    /// Index of the matching close brace for the open brace at `open`.
    fn match_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            match self.toks[i].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    /// Scan from `i` for the first `{` (returning its index) or `;`
    /// (returning `Err(index)`), within `end`.
    fn find_body(&self, i: usize, end: usize) -> Result<usize, usize> {
        let mut j = i;
        while j < end {
            match self.toks[j].tok {
                Tok::Punct('{') => return Ok(j),
                Tok::Punct(';') => return Err(j),
                _ => j += 1,
            }
        }
        Err(end.saturating_sub(1))
    }

    /// Skip a balanced `(...)`/`[...]`/`{...}`-aware region until a `;` at
    /// depth 0 (used for const/static initializers, which may contain
    /// struct literals). Returns the index one past the `;`.
    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            match self.toks[i].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Punct(';') if depth <= 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Parse a `use` tree starting after the `use` keyword; returns the
    /// index one past the terminating `;`.
    fn parse_use(&mut self, mut i: usize, end: usize) -> usize {
        let mut prefix: Vec<String> = Vec::new();
        i = self.parse_use_tree(i, end, &mut prefix);
        while i < end && !self.punct(i, ';') {
            i += 1;
        }
        i + 1
    }

    /// Recursive use-tree walk; `prefix` is the path accumulated so far.
    fn parse_use_tree(&mut self, mut i: usize, end: usize, prefix: &mut Vec<String>) -> usize {
        let depth0 = prefix.len();
        loop {
            if i >= end {
                return i;
            }
            if let Some(seg) = self.ident(i) {
                if seg == "as" {
                    // `path as alias`
                    if let Some(alias) = self.ident(i + 1) {
                        self.imports.insert(alias.to_string(), prefix.clone());
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                prefix.push(seg.to_string());
                i += 1;
                if self.punct(i, ':') && self.punct(i + 1, ':') {
                    i += 2;
                    continue;
                }
                // Leaf (unless an `as` alias follows and replaces it).
                if !matches!(self.ident(i), Some("as")) {
                    let leaf = prefix.last().cloned().unwrap_or_default();
                    let leaf = if leaf == "self" {
                        prefix.pop();
                        prefix.last().cloned().unwrap_or_default()
                    } else {
                        leaf
                    };
                    if !leaf.is_empty() {
                        self.imports.insert(leaf, prefix.clone());
                    }
                }
                continue;
            }
            if self.punct(i, '*') {
                self.globs.push(prefix.clone());
                i += 1;
                continue;
            }
            if self.punct(i, '{') {
                i += 1;
                loop {
                    if i >= end || self.punct(i, '}') {
                        i += 1;
                        break;
                    }
                    if self.punct(i, ',') {
                        i += 1;
                        continue;
                    }
                    let mut sub = prefix.clone();
                    i = self.parse_use_tree(i, end, &mut sub);
                }
                prefix.truncate(depth0);
                return i;
            }
            // `,`, `}`, `;` — end of this subtree.
            prefix.truncate(depth0);
            return i;
        }
    }

    /// Read a type path like `fmt::Display` or `ShardedEngine<W>` starting
    /// at `i`; returns (last type ident, index after the path incl. its
    /// generic args). Skips leading `&`/`mut`/`dyn` and lifetimes.
    fn read_type_path(&self, mut i: usize, end: usize) -> (Option<String>, usize) {
        while i < end && (self.punct(i, '&') || matches!(self.ident(i), Some("mut") | Some("dyn")))
        {
            i += 1;
        }
        let mut last: Option<String> = None;
        while i < end {
            if let Some(seg) = self.ident(i) {
                if seg == "for" || seg == "where" {
                    break;
                }
                last = Some(seg.to_string());
                i += 1;
                if self.punct(i, ':') && self.punct(i + 1, ':') {
                    i += 2;
                    continue;
                }
                if self.punct(i, '<') {
                    i = self.skip_angles(i, end);
                }
                break;
            }
            break;
        }
        (last, i)
    }

    /// At a `<`: skip to one past its matching `>`, treating `->` as inert.
    fn skip_angles(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            match self.toks[i].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    // `->` inside Fn() sugar: `-` directly before.
                    let arrow = i > 0 && matches!(self.toks[i - 1].tok, Tok::Punct('-'));
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Parse items in `[i, end)`; `owner` is the impl/trait context.
    fn items(
        &mut self,
        mut i: usize,
        end: usize,
        module: &mut Vec<String>,
        owner: Option<(String, Option<String>)>,
    ) {
        while i < end {
            let Some(name) = self.ident(i) else {
                // Attributes: skip the bracketed group so `#[cfg(feature =
                // "x")]` contents are never mistaken for items.
                if self.punct(i, '#') && self.punct(i + 1, '[') {
                    let mut depth = 0i32;
                    let mut k = i + 1;
                    while k < end {
                        match self.toks[k].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k + 1;
                } else {
                    i += 1;
                }
                continue;
            };
            match name {
                "fn" => {
                    let Some(fname) = self.ident(i + 1) else {
                        i += 1;
                        continue;
                    };
                    let fname = fname.to_string();
                    let sp = &self.toks[i];
                    match self.find_body(i + 2, end) {
                        Ok(open) => {
                            let close = self.match_brace(open, end);
                            let module_s = module.join("::");
                            let fqn_base = match &owner {
                                Some((ty, _)) => format!("{module_s}::{ty}::{fname}"),
                                None => format!("{module_s}::{fname}"),
                            };
                            self.fns.push(FnDef {
                                file: self.file,
                                fqn: fqn_base,
                                name: fname,
                                type_name: owner.as_ref().map(|(t, _)| t.clone()),
                                trait_name: owner.as_ref().and_then(|(_, tr)| tr.clone()),
                                module: module_s,
                                line: sp.line,
                                col: sp.col,
                                body: (open + 1, close),
                                masked: self.masked_file || self.cfg_mask[i],
                            });
                            i = close + 1;
                        }
                        Err(semi) => i = semi + 1, // trait method decl / extern
                    }
                }
                "impl" => {
                    let mut j = i + 1;
                    if self.punct(j, '<') {
                        j = self.skip_angles(j, end);
                    }
                    let (first, after) = self.read_type_path(j, end);
                    let (ty, tr);
                    let mut k = after;
                    if matches!(self.ident(k), Some("for")) {
                        let (second, after2) = self.read_type_path(k + 1, end);
                        ty = second;
                        tr = first;
                        k = after2;
                    } else {
                        ty = first;
                        tr = None;
                    }
                    match self.find_body(k, end) {
                        Ok(open) => {
                            let close = self.match_brace(open, end);
                            let owner = Some((ty.unwrap_or_else(|| "_".into()), tr));
                            self.items(open + 1, close, module, owner);
                            i = close + 1;
                        }
                        Err(semi) => i = semi + 1,
                    }
                }
                "trait" => {
                    let tname = self.ident(i + 1).unwrap_or("_").to_string();
                    match self.find_body(i + 2, end) {
                        Ok(open) => {
                            let close = self.match_brace(open, end);
                            let owner = Some((tname.clone(), Some(tname)));
                            self.items(open + 1, close, module, owner);
                            i = close + 1;
                        }
                        Err(semi) => i = semi + 1,
                    }
                }
                "mod" => {
                    let mname = self.ident(i + 1).map(|s| s.to_string());
                    match self.find_body(i + 2, end) {
                        Ok(open) => {
                            let close = self.match_brace(open, end);
                            if let Some(m) = mname {
                                module.push(m);
                                self.items(open + 1, close, module, owner.clone());
                                module.pop();
                            }
                            i = close + 1;
                        }
                        Err(semi) => i = semi + 1,
                    }
                }
                "use" => i = self.parse_use(i + 1, end),
                "struct" | "enum" | "union" => {
                    // Skip the definition; field types are collected by the
                    // whole-file `name: Type` scan.
                    match self.find_body(i + 1, end) {
                        Ok(open) => i = self.match_brace(open, end) + 1,
                        Err(semi) => i = semi + 1,
                    }
                }
                "const" | "static" | "type" => i = self.skip_to_semi(i + 1, end),
                "macro_rules" => match self.find_body(i + 1, end) {
                    Ok(open) => i = self.match_brace(open, end) + 1,
                    Err(semi) => i = semi + 1,
                },
                _ => i += 1,
            }
        }
    }
}

/// Scan the whole file for `name: <type containing a hash container>` and
/// `name = FxHashMap::default()`-style bindings.
fn collect_hashy(toks: &[Sp]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let ident = |i: usize| match toks.get(i).map(|s| &s.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct =
        |i: usize, c: char| matches!(toks.get(i).map(|s| &s.tok), Some(Tok::Punct(p)) if *p == c);
    for i in 0..toks.len() {
        let Some(name) = ident(i) else { continue };
        if is_keyword(name) || name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            continue;
        }
        // `name: Type`, not a `::` path segment on either side.
        if punct(i + 1, ':') && !punct(i + 2, ':') && (i == 0 || !punct(i - 1, ':')) {
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    Tok::Punct(',')
                    | Tok::Punct(';')
                    | Tok::Punct('=')
                    | Tok::Punct('{')
                    | Tok::Punct('}')
                        if depth == 0 =>
                    {
                        break;
                    }
                    Tok::Ident(t) if HASH_TYPES.contains(&t.as_str()) => {
                        out.insert(name.to_string());
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `name = FxHashMap::default()` / `HashMap::new()`.
        if punct(i + 1, '=') {
            if let Some(t) = ident(i + 2) {
                if HASH_TYPES.contains(&t) {
                    out.insert(name.to_string());
                }
            }
        }
    }
    out
}

/// Parse every file into the workspace model. `crate_names` maps a
/// directory under `crates/` to its crate identifier (e.g. `core` →
/// `grouter`); unknown directories fall back to `dir` with `-` → `_`.
pub fn parse_workspace(
    files: &[FileInput],
    crate_names: &BTreeMap<String, String>,
    analyze_rules: &[&str],
    lint_rules: &[&str],
) -> Workspace {
    let mut ctxs = Vec::new();
    let mut fns: Vec<FnDef> = Vec::new();
    for (file_idx, f) in files.iter().enumerate() {
        let (toks, comments) = tokenize(&f.src);
        let cfg_mask = cfg_test_mask(&toks);
        let (module, masked_file) = module_path(&f.path, crate_names);
        let pragmas = parse_pragmas(&comments, "grouter-analyze:", analyze_rules);
        let lint_pragmas = parse_pragmas(&comments, "grouter-lint:", lint_rules);
        let hashy = collect_hashy(&toks);
        let mut p = Parser {
            toks: &toks,
            cfg_mask: &cfg_mask,
            file: file_idx,
            masked_file,
            fns: Vec::new(),
            imports: BTreeMap::new(),
            globs: Vec::new(),
        };
        let end = toks.len();
        let mut mpath = module.clone();
        p.items(0, end, &mut mpath, None);
        let Parser {
            fns: file_fns,
            imports,
            globs,
            ..
        } = p;
        fns.extend(file_fns);
        ctxs.push(FileCtx {
            path: f.path.clone(),
            module,
            masked_file,
            toks,
            cfg_mask,
            imports,
            globs,
            hashy,
            pragmas,
            lint_pragmas,
        });
    }

    // Disambiguate fqn collisions deterministically (`Type::fmt#2`).
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for f in fns.iter_mut() {
        let n = seen.entry(f.fqn.clone()).or_insert(0);
        *n += 1;
        if *n > 1 {
            f.fqn = format!("{}#{}", f.fqn, n);
        }
    }

    let mut methods_by_type: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut free_by_module: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, f) in fns.iter().enumerate() {
        match &f.type_name {
            Some(ty) => {
                methods_by_type
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(idx);
                methods_by_name.entry(f.name.clone()).or_default().push(idx);
            }
            None => {
                free_by_module.insert((f.module.clone(), f.name.clone()), idx);
                free_by_name.entry(f.name.clone()).or_default().push(idx);
            }
        }
    }

    Workspace {
        files: ctxs,
        fns,
        methods_by_type,
        methods_by_name,
        free_by_module,
        free_by_name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(path: &str, src: &str) -> Workspace {
        parse_workspace(
            &[FileInput {
                path: path.into(),
                src: src.into(),
            }],
            &BTreeMap::new(),
            &crate::PASSES,
            &grouter_lint::RULES,
        )
    }

    #[test]
    fn free_and_impl_fns_get_qualified_names() {
        let w = ws(
            "crates/sim/src/flownet.rs",
            "pub fn helper() {}\npub struct FlowNet;\nimpl FlowNet {\n    pub fn recompute(&mut self) { helper(); }\n}\n",
        );
        let names: Vec<&str> = w.fns.iter().map(|f| f.fqn.as_str()).collect();
        assert_eq!(
            names,
            vec!["sim::flownet::helper", "sim::flownet::FlowNet::recompute"]
        );
        assert!(w
            .methods_by_type
            .contains_key(&("FlowNet".into(), "recompute".into())));
    }

    #[test]
    fn trait_impls_and_defaults_are_methods() {
        let w = ws(
            "crates/sim/src/x.rs",
            "trait T { fn a(&self) { } fn b(&self); }\nstruct S;\nimpl T for S { fn b(&self) {} }\n",
        );
        let names: Vec<&str> = w.fns.iter().map(|f| f.fqn.as_str()).collect();
        assert_eq!(names, vec!["sim::x::T::a", "sim::x::S::b"]);
        assert_eq!(w.fns[1].trait_name.as_deref(), Some("T"));
    }

    #[test]
    fn inline_mods_extend_the_module_path() {
        let w = ws(
            "crates/sim/src/lib.rs",
            "mod inner {\n    pub fn f() {}\n}\n",
        );
        assert_eq!(w.fns[0].fqn, "sim::inner::f");
    }

    #[test]
    fn use_trees_feed_imports_and_globs() {
        let w = ws(
            "crates/sim/src/x.rs",
            "use crate::flownet::{FlowNet, recompute as rc};\nuse std::collections::HashMap;\nuse crate::prelude::*;\n",
        );
        let ctx = &w.files[0];
        assert_eq!(
            ctx.imports.get("rc"),
            Some(&vec!["crate".into(), "flownet".into(), "recompute".into()])
        );
        assert_eq!(
            ctx.imports.get("FlowNet"),
            Some(&vec!["crate".into(), "flownet".into(), "FlowNet".into()])
        );
        assert_eq!(ctx.globs, vec![vec!["crate".to_string(), "prelude".into()]]);
    }

    #[test]
    fn hashy_names_cover_fields_params_and_lets() {
        let w = ws(
            "crates/sim/src/x.rs",
            "struct S { pending: FxHashMap<u64, u32>, done: Vec<u32> }\nfn f(live: &HashMap<u32, u32>) { let fresh = FxHashSet::default(); let plain: Vec<u32> = vec![]; }\n",
        );
        let h = &w.files[0].hashy;
        assert!(h.contains("pending") && h.contains("live") && h.contains("fresh"));
        assert!(!h.contains("done") && !h.contains("plain"));
    }

    #[test]
    fn cfg_test_fns_are_masked() {
        let w = ws(
            "crates/sim/src/x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        );
        assert!(!w.fns[0].masked);
        assert!(w.fns[1].masked);
    }

    #[test]
    fn tests_dir_files_are_fully_masked() {
        let w = ws("crates/sim/tests/oracle.rs", "fn f() {}\n");
        assert!(w.fns[0].masked);
    }
}
