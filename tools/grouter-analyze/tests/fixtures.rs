//! Fixture harness, mirroring grouter-lint's: each `tests/fixtures/*.rs`
//! starts with a `//@ path: <virtual path>` header naming the in-tree
//! location the analyzer should see, and the sibling `.expected` file
//! lists findings as `<line> <pass>` pairs (empty for a clean fixture).
//! Bad `grouter-analyze:` pragmas surface as the pseudo-pass `bad-pragma`.

use std::fs;
use std::path::Path;

fn parse_expected(src: &str, from: &Path) -> Vec<(usize, String)> {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (line, pass) = l
                .split_once(' ')
                .unwrap_or_else(|| panic!("{from:?}: expected `<line> <pass>`, got `{l}`"));
            let line = line
                .parse()
                .unwrap_or_else(|_| panic!("{from:?}: bad line number in `{l}`"));
            (line, pass.trim().to_string())
        })
        .collect()
}

/// Findings plus pragma errors, as comparable (line, pass) pairs.
fn analyze_fixture(virtual_path: &str, src: &str) -> Vec<(usize, String)> {
    let report = grouter_analyze::analyze_source(virtual_path, src);
    let mut got: Vec<(usize, String)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.pass.to_string()))
        .collect();
    for e in &report.pragma_errors {
        // Formatted as `path:line: message`.
        let line = e
            .split(':')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable pragma error `{e}`"));
        got.push((line, "bad-pragma".to_string()));
    }
    got
}

#[test]
fn fixtures_match_expected_findings() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut checked = 0usize;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("fixture is readable");
        let virtual_path = src
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("//@ path:"))
            .unwrap_or_else(|| panic!("{path:?} is missing its `//@ path:` header"))
            .trim();

        let mut got = analyze_fixture(virtual_path, &src);
        let expected_path = path.with_extension("expected");
        let expected_src = fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("missing expectations file {expected_path:?}"));
        let mut want = parse_expected(&expected_src, &expected_path);

        got.sort();
        want.sort();
        assert_eq!(
            got, want,
            "findings mismatch for fixture {path:?} (as `{virtual_path}`)"
        );
        checked += 1;
    }
    assert!(
        checked >= 9,
        "expected at least 9 fixtures, found {checked}"
    );
}
