//! Meta-test over both tools' fixture corpora: every grouter-lint rule
//! (plus its `bad-pragma` pseudo-rule) and every grouter-analyze pass
//! (plus its `bad-pragma` pseudo-pass) must have at least one fixture in
//! which it actually fires. A rule or pass nobody can demonstrate with a
//! fixture is either dead or untested — both are failures here.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Collect the second column of every non-comment line across a fixture
/// directory's `.expected` files.
fn firing_names(dir: &Path) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let entries =
        fs::read_dir(dir).unwrap_or_else(|e| panic!("fixture dir {dir:?} is readable: {e}"));
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "expected") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("expected file is readable");
        for line in src.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((_, name)) = line.split_once(' ') {
                out.insert(name.trim().to_string());
            }
        }
    }
    out
}

#[test]
fn every_lint_rule_has_a_firing_fixture() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../grouter-lint/tests/fixtures");
    let firing = firing_names(&dir);
    let mut missing: Vec<&str> = grouter_lint::RULES
        .iter()
        .chain(std::iter::once(&"bad-pragma"))
        .filter(|r| !firing.contains(**r))
        .copied()
        .collect();
    missing.sort();
    assert!(
        missing.is_empty(),
        "lint rules with no firing fixture: {missing:?}"
    );
}

#[test]
fn every_analyze_pass_has_a_firing_fixture() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let firing = firing_names(&dir);
    let mut missing: Vec<&str> = grouter_analyze::PASSES
        .iter()
        .chain(std::iter::once(&"bad-pragma"))
        .filter(|p| !firing.contains(**p))
        .copied()
        .collect();
    missing.sort();
    assert!(
        missing.is_empty(),
        "analyze passes with no firing fixture: {missing:?}"
    );
}
