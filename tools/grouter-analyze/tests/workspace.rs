//! End-to-end run over the real workspace sources: the acceptance floor
//! for call-site resolution, the no-bad-pragma invariant, and the entry
//! point set must all hold on the tree as committed.

use grouter_analyze::FileInput;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

fn workspace_report() -> grouter_analyze::Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let crates = root.join("crates");
    let paths = grouter_lint::common::walk_rs_files(&[crates.display().to_string()])
        .expect("crates/ exists");
    assert!(paths.len() > 50, "workspace walk looks truncated");
    let mut crate_names = BTreeMap::new();
    for entry in fs::read_dir(&crates).expect("crates/ is readable") {
        let dir = entry.expect("dir entry").path();
        let Ok(manifest) = fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        for line in manifest.lines() {
            if let Some(rest) = line.trim().strip_prefix("name") {
                let name = rest
                    .trim_start()
                    .trim_start_matches('=')
                    .trim()
                    .trim_matches('"');
                crate_names.insert(
                    dir.file_name().unwrap().to_string_lossy().to_string(),
                    name.replace('-', "_"),
                );
                break;
            }
        }
    }
    let files: Vec<FileInput> = paths
        .iter()
        .map(|p| {
            // Model paths relative to the repo root so module paths and the
            // committed baseline agree regardless of test cwd.
            let rel = p.strip_prefix(&root).unwrap_or(p);
            FileInput {
                path: rel.display().to_string().replace('\\', "/"),
                src: fs::read_to_string(p).expect("source is readable"),
            }
        })
        .collect();
    grouter_analyze::analyze(&files, &crate_names)
}

#[test]
fn workspace_resolution_rate_meets_the_floor() {
    let r = workspace_report();
    let rate = r.stats.resolution_rate();
    assert!(
        rate >= 0.90,
        "call-site resolution {:.3} fell below the 0.90 floor ({} unresolved of {})",
        rate,
        r.stats.unresolved,
        r.stats.call_sites
    );
    // Unresolved sites are counted, never silently dropped.
    assert_eq!(
        r.stats.call_sites,
        r.stats.internal + r.stats.external + r.stats.unresolved
    );
}

#[test]
fn workspace_has_entry_points_and_no_bad_pragmas() {
    let r = workspace_report();
    assert!(
        r.entry_points >= 20,
        "expected dozens of data-plane entry methods, found {}",
        r.entry_points
    );
    assert!(r.pragma_errors.is_empty(), "{:?}", r.pragma_errors);
}

#[test]
fn workspace_findings_are_covered_by_the_committed_baseline() {
    let r = workspace_report();
    let baseline_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../analyze-baseline.txt");
    let text = fs::read_to_string(&baseline_path).expect("committed baseline exists");
    let b = grouter_analyze::baseline::parse(&text).expect("baseline parses");
    let rec = grouter_analyze::baseline::reconcile(&b, &r.findings);
    let new: Vec<String> = rec
        .unbaselined
        .iter()
        .map(|&i| r.findings[i].to_string())
        .collect();
    assert!(new.is_empty(), "unbaselined findings: {new:#?}");
    let stale: Vec<&str> = rec.stale.iter().map(|e| e.key.as_str()).collect();
    assert!(stale.is_empty(), "stale baseline entries: {stale:?}");
}
