//@ path: crates/obs/src/fixture.rs
//! True negative: the same iteration is canonicalized with a sort before
//! any row is emitted, so the taint pass stays quiet.

pub struct HitTable {
    pending: FxHashMap<u64, u32>,
}

impl HitTable {
    pub fn flush(&self, table: &mut MetricsTable) {
        let mut rows: Vec<(u64, u32)> = self.pending.iter().map(|(&k, &v)| (k, v)).collect();
        rows.sort_unstable();
        for (flow, hits) in rows {
            table.record(flow, hits);
        }
    }
}
