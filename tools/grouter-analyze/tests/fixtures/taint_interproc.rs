//@ path: crates/obs/src/fixture.rs
//! Interprocedural sink: the iteration itself never touches a sink, but
//! the helper it calls per entry does, so the taint still lands.

pub struct HitTable {
    pending: FxHashMap<u64, u32>,
}

impl HitTable {
    pub fn flush(&self, table: &mut MetricsTable) {
        for (flow, hits) in self.pending.iter() {
            emit_row(table, *flow, *hits);
        }
    }
}

fn emit_row(table: &mut MetricsTable, flow: u64, hits: u32) {
    table.record(flow, hits);
}
