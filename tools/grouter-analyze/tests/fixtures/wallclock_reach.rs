//@ path: crates/sim/src/fixture.rs
//! Wall-clock reads on a sim-driven path: `Instant::now` and `SystemTime`
//! both fire once the containing function is reachable from `FlowNet`.

pub struct FlowNet;

impl FlowNet {
    pub fn recompute(&mut self) {
        stamp();
    }
}

fn stamp() {
    let _t0 = Instant::now();
    let _wall = SystemTime::now();
}
