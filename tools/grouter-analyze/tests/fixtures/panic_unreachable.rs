//@ path: crates/transfer/src/fixture.rs
//! True negative: the panicking helper is never called from any entry
//! point, so the reachability pass stays quiet. Literal indexing and
//! full-range slicing are also exempt even where reachable.

pub struct TransferEngine;

impl TransferEngine {
    pub fn admit(&mut self, buf: &[u8]) -> u8 {
        let head = buf[0];
        let _all = &buf[..];
        head
    }
}

fn lonely(x: Option<u64>) -> u64 {
    x.unwrap()
}
