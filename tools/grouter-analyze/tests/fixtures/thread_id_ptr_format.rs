//@ path: crates/obs/src/fixture.rs
//! Two more source kinds: thread ids and pointer formatting, both feeding
//! an obs trace sample.

pub struct Tracer;

impl Tracer {
    pub fn label(&self, rec: &mut Recorder, buf: &Buffer) {
        let tid = thread::current().id();
        rec.sample("worker", tid);
        let addr = format!("{:p}", buf);
        rec.sample("buffer", addr);
    }
}
