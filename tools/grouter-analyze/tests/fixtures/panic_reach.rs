//@ path: crates/transfer/src/fixture.rs
//! True positives: panic sites transitively reachable from a data-plane
//! entry type through a two-hop call chain.

pub struct TransferEngine;

impl TransferEngine {
    pub fn admit(&mut self, req: u64) {
        stage(req);
    }
}

fn stage(req: u64) {
    finish(req);
}

fn finish(req: u64) {
    let table: Vec<u64> = Vec::new();
    let x: Option<u64> = None;
    let _a = x.unwrap();
    let _b = table[req as usize];
    if req == 0 {
        panic!("zero request");
    }
}
