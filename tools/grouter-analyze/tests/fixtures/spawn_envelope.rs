//@ path: crates/sim/src/fixture.rs
//! Spawned-thread completion order flowing into cross-shard envelope
//! construction: whichever worker finishes first builds its envelope
//! first, so the receiving shard sees a host-order-dependent sequence.

pub fn fan_out(items: Vec<Work>, tx: &Sender) {
    for item in items {
        let handle = std::thread::spawn(move || item.run());
        let result = handle.join();
        let env = Envelope { shard: 0, payload: result };
        tx.send(env);
    }
}
