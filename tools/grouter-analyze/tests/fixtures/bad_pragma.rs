//@ path: crates/sim/src/fixture.rs
//! Malformed suppressions are hard errors, reported as `bad-pragma`
//! pseudo-findings by the harness: one names an unknown pass, one has no
//! justification.

// grouter-analyze: allow(no-such-pass): typo in the pass name
fn a() {}

// grouter-analyze: allow(determinism-taint)
fn b() {}
