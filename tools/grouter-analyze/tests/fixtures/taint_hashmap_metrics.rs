//@ path: crates/obs/src/fixture.rs
//! Seeded true positive: FxHashMap iteration order flows straight into a
//! metrics row with no canonicalization in between.

pub struct HitTable {
    pending: FxHashMap<u64, u32>,
}

impl HitTable {
    pub fn flush(&self, table: &mut MetricsTable) {
        for (flow, hits) in self.pending.iter() {
            table.record(*flow, *hits);
        }
    }
}
