//@ path: crates/sim/src/fixture.rs
//! Justified pragmas silence each pass at the annotated site, and a
//! justified grouter-lint no-panic pragma is honored by the panic pass so
//! an invariant documented once in-source is not re-reported.

pub struct FlowNet {
    pending: FxHashMap<u64, u32>,
}

impl FlowNet {
    pub fn step(&mut self, i: usize, table: &mut MetricsTable) {
        // grouter-analyze: allow(panic-reachable): index validated by admit()
        let _v = self.slots[i];
        // grouter-lint: allow(no-panic-in-dataplane): ring is non-empty here
        let _w = self.head.unwrap();
        // grouter-analyze: allow(wallclock-reachable): debug stamp, never fed to sim time
        let _t0 = Instant::now();
        // grouter-analyze: allow(determinism-taint): rows are keyed by flow id, order-free
        for (k, v) in self.pending.iter() {
            table.record(*k, *v);
        }
    }
}
