//@ path: crates/sim/src/fixture.rs
//! Hash-iteration order deciding event schedule order: each key becomes a
//! wake-up event, so the timeline's tie-break order is nondeterministic.

pub struct Wakeups {
    due: FxHashSet<u64>,
}

impl Wakeups {
    pub fn arm(&self, sched: &mut Scheduler) {
        for &flow in self.due.iter() {
            sched.schedule_at(SimTime(flow), Event::Wake(flow));
        }
    }
}
