//! Shared infrastructure for the workspace's source tools (`grouter-lint`
//! and `grouter-analyze`): the hand-rolled lexer, `#[cfg(test)]` masking,
//! the suppression-pragma parser, the diagnostic type, and the file walker.
//!
//! Both tools consume this module so they cannot drift on path filtering,
//! pragma syntax, or how Rust sources are tokenized. Everything here is
//! zero-dependency and offline.

use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// A finding at a source position. Displayed as `line:col: [rule] message`,
/// so a driver printing `path:{diag}` yields the clickable
/// `path:line:col: [rule] message` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub line: usize,
    pub col: usize,
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.line, self.col, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Punct(char),
    /// A string literal's contents (escapes left as written). Kept in the
    /// stream so expression-aware passes can inspect format strings; the
    /// token-pattern rules simply never match on it.
    Str(String),
}

#[derive(Debug, Clone)]
pub struct Sp {
    pub line: usize,
    pub col: usize,
    pub tok: Tok,
}

/// Tokenize `src`, returning the token stream and the line comments
/// (pragmas live in line comments only). Positions are 1-based.
pub fn tokenize(src: &str) -> (Vec<Sp>, Vec<(usize, String)>) {
    let b: Vec<char> = src.chars().collect();
    // line_starts[k] = char index where line k+1 begins.
    let mut line_starts = vec![0usize];
    for (i, &c) in b.iter().enumerate() {
        if c == '\n' {
            line_starts.push(i + 1);
        }
    }
    let pos = |i: usize| -> (usize, usize) {
        let line = line_starts.partition_point(|&s| s <= i);
        (line, i - line_starts[line - 1] + 1)
    };

    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && b[j] != '\n' {
                j += 1;
            }
            comments.push((pos(i).0, b[start..j].iter().collect()));
            i = j;
        } else if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' {
            let (line, col) = pos(i);
            let end = skip_plain_string(&b, i);
            toks.push(Sp {
                line,
                col,
                tok: Tok::Str(b[i + 1..end.saturating_sub(1).max(i + 1)].iter().collect()),
            });
            i = end;
        } else if (c == 'r' || c == 'b') && string_prefix(&b, i).is_some() {
            let (quote, hashes, raw) = string_prefix(&b, i).unwrap();
            let (line, col) = pos(i);
            let end = if raw {
                skip_raw_string(&b, quote, hashes)
            } else {
                skip_plain_string(&b, quote)
            };
            let content_end = if raw {
                end.saturating_sub(1 + hashes)
            } else {
                end.saturating_sub(1)
            };
            toks.push(Sp {
                line,
                col,
                tok: Tok::Str(
                    b[(quote + 1).min(content_end)..content_end]
                        .iter()
                        .collect(),
                ),
            });
            i = end;
        } else if c == 'b' && b.get(i + 1) == Some(&'\'') {
            i = skip_char_or_lifetime(&b, i + 1);
        } else if c == '\'' {
            i = skip_char_or_lifetime(&b, i);
        } else if c.is_alphanumeric() || c == '_' {
            let mut j = i;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            let (line, col) = pos(i);
            toks.push(Sp {
                line,
                col,
                tok: Tok::Ident(b[i..j].iter().collect()),
            });
            i = j;
        } else {
            let (line, col) = pos(i);
            toks.push(Sp {
                line,
                col,
                tok: Tok::Punct(c),
            });
            i += 1;
        }
    }
    (toks, comments)
}

/// If `b[i]` starts a raw/byte string prefix (`r"`, `r#"`, `br"`, `b"`),
/// return (index of the opening quote, hash count, is_raw).
fn string_prefix(b: &[char], i: usize) -> Option<(usize, usize, bool)> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j < b.len() && b[j] == 'r' {
        let mut k = j + 1;
        let mut hashes = 0usize;
        while k < b.len() && b[k] == '#' {
            hashes += 1;
            k += 1;
        }
        if k < b.len() && b[k] == '"' {
            return Some((k, hashes, true));
        }
        None
    } else if b[i] == 'b' && j < b.len() && b[j] == '"' {
        Some((j, 0, false))
    } else {
        None
    }
}

/// Skip a `"..."` string starting at the opening quote; returns the index
/// one past the closing quote.
fn skip_plain_string(b: &[char], open: usize) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skip a raw string whose opening quote is at `open` with `hashes` hashes.
fn skip_raw_string(b: &[char], open: usize, hashes: usize) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        if b[j] == '"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return j + 1 + hashes;
        }
        j += 1;
    }
    j
}

/// At a `'`: either a char literal (`'x'`, `'\n'`, `'\u{1F600}'`) or a
/// lifetime (`'a`). Returns the index one past the literal.
fn skip_char_or_lifetime(b: &[char], quote: usize) -> usize {
    if b.get(quote + 1) == Some(&'\\') {
        let mut j = quote + 2;
        while j < b.len() && b[j] != '\'' {
            j += 1;
        }
        j + 1
    } else if b.get(quote + 2) == Some(&'\'') {
        quote + 3
    } else {
        let mut j = quote + 1;
        while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        j
    }
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

pub fn is_punct(sp: Option<&Sp>, c: char) -> bool {
    matches!(sp, Some(Sp { tok: Tok::Punct(p), .. }) if *p == c)
}

pub fn is_ident(sp: Option<&Sp>, name: &str) -> bool {
    matches!(sp, Some(Sp { tok: Tok::Ident(s), .. }) if s == name)
}

// ---------------------------------------------------------------------------
// #[cfg(test)] exclusion
// ---------------------------------------------------------------------------

/// Mark every token covered by a `#[cfg(test)]` item (attribute through the
/// end of the item's brace-delimited body, or its terminating `;`).
pub fn cfg_test_mask(toks: &[Sp]) -> Vec<bool> {
    let mut ex = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let attr = is_punct(toks.get(i), '#')
            && is_punct(toks.get(i + 1), '[')
            && is_ident(toks.get(i + 2), "cfg")
            && is_punct(toks.get(i + 3), '(')
            && is_ident(toks.get(i + 4), "test")
            && is_punct(toks.get(i + 5), ')')
            && is_punct(toks.get(i + 6), ']');
        if !attr {
            i += 1;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        let mut j = i + 7;
        while is_punct(toks.get(j), '#') && is_punct(toks.get(j + 1), '[') {
            let mut depth = 0i32;
            let mut k = j + 1;
            while k < toks.len() {
                match toks[k].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        // The item body is the first `{...}` block; a `;` first means a
        // body-less item (e.g. `#[cfg(test)] use ...;`).
        let mut k = j;
        let mut open = None;
        while k < toks.len() {
            match toks[k].tok {
                Tok::Punct(';') => break,
                Tok::Punct('{') => {
                    open = Some(k);
                    break;
                }
                _ => k += 1,
            }
        }
        let end = if let Some(open) = open {
            let mut depth = 0i32;
            let mut m = open;
            while m < toks.len() {
                match toks[m].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            m.min(toks.len() - 1)
        } else {
            k.min(toks.len() - 1)
        };
        for slot in ex.iter_mut().take(end + 1).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    ex
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

/// A suppression pragma, e.g. `// grouter-lint: allow(<rule>): <why>`. The
/// tool name (`grouter-lint:` / `grouter-analyze:`) is the `prefix`
/// argument to [`parse_pragmas`]; the syntax is otherwise identical across
/// tools. The justification after `):` is mandatory; a pragma without one
/// (or naming a rule outside `known`) carries `parse_error`/`justified`
/// state the caller reports as `bad-pragma`.
#[derive(Debug, Clone)]
pub struct Pragma {
    pub line: usize,
    pub rules: Vec<String>,
    pub justified: bool,
    pub parse_error: Option<String>,
}

pub fn parse_pragmas(comments: &[(usize, String)], prefix: &str, known: &[&str]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (line, text) in comments {
        let t = text.trim();
        let Some(rest) = t.strip_prefix(prefix) else {
            continue;
        };
        let rest = rest.trim();
        let Some(inner) = rest.strip_prefix("allow(") else {
            out.push(Pragma {
                line: *line,
                rules: Vec::new(),
                justified: false,
                parse_error: Some(format!("expected `allow(<rule>)`, got `{rest}`")),
            });
            continue;
        };
        let Some(close) = inner.find(')') else {
            out.push(Pragma {
                line: *line,
                rules: Vec::new(),
                justified: false,
                parse_error: Some("unterminated `allow(` pragma".to_string()),
            });
            continue;
        };
        let rules: Vec<String> = inner[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut err = None;
        for r in &rules {
            if !known.contains(&r.as_str()) {
                err = Some(format!("unknown rule `{r}` in allow pragma"));
            }
        }
        if rules.is_empty() {
            err = Some("empty allow pragma".to_string());
        }
        // Justification: non-empty text after the closing paren, typically
        // introduced by `:`.
        let tail = inner[close + 1..]
            .trim_start_matches([':', '-', ' '])
            .trim();
        out.push(Pragma {
            line: *line,
            rules,
            justified: !tail.is_empty(),
            parse_error: err,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// File walker
// ---------------------------------------------------------------------------

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk_dir(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Collect every `.rs` file under the given roots (files are accepted
/// verbatim), sorted for deterministic traversal. `target/` and dotted
/// directories are skipped. Returns `Err` for a root that does not exist.
pub fn walk_rs_files(roots: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for root in roots {
        let p = Path::new(root);
        if p.is_file() {
            files.push(p.to_path_buf());
        } else if p.is_dir() {
            walk_dir(p, &mut files);
        } else {
            return Err(format!("no such path: {root}"));
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_one_based_char_positions() {
        let (toks, _) = tokenize("let x = foo();\n  bar();\n");
        let foo = toks.iter().find(|s| is_ident(Some(s), "foo")).unwrap();
        assert_eq!((foo.line, foo.col), (1, 9));
        let bar = toks.iter().find(|s| is_ident(Some(s), "bar")).unwrap();
        assert_eq!((bar.line, bar.col), (2, 3));
    }

    #[test]
    fn string_literals_become_str_tokens() {
        let (toks, _) = tokenize("f(\"a{:p}b\", r#\"raw\"#);");
        let strs: Vec<&str> = toks
            .iter()
            .filter_map(|s| match &s.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["a{:p}b", "raw"]);
    }

    #[test]
    fn multiline_strings_keep_line_accounting() {
        let (toks, _) = tokenize("let s = \"a\nb\";\nfn after() {}\n");
        let after = toks.iter().find(|s| is_ident(Some(s), "after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn pragma_prefix_is_parameterized() {
        let comments = vec![(
            1,
            " grouter-analyze: allow(panic-reachable): why".to_string(),
        )];
        let p = parse_pragmas(&comments, "grouter-analyze:", &["panic-reachable"]);
        assert_eq!(p.len(), 1);
        assert!(p[0].justified && p[0].parse_error.is_none());
        // The other tool's prefix does not match.
        assert!(parse_pragmas(&comments, "grouter-lint:", &["panic-reachable"]).is_empty());
    }
}
