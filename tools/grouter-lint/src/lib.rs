//! grouter-lint: a zero-dependency lexical linter for the GROUTER workspace.
//!
//! The linter tokenizes Rust sources with a small hand-rolled lexer (no
//! `syn`, no registry dependencies — the build environment is offline) and
//! enforces seven project rules with file/line diagnostics:
//!
//! * `no-panic-in-dataplane` — `unwrap`/`expect`/`panic!`/`unreachable!` are
//!   banned in the data-plane crates (`sim`, `topology`, `transfer`, `store`,
//!   `mem`, `core`, `runtime`) outside `#[cfg(test)]` regions, `tests/` and
//!   `benches/` directories. Silent throughput loss beats a crash in a data
//!   plane; recoverable paths must carry typed errors, unavoidable
//!   invariants a justified pragma.
//! * `no-wallclock-in-sim` — `Instant::now` / `SystemTime` are banned in
//!   `sim`, `topology`, `transfer`: the simulation is virtual-time only and
//!   any wall-clock read breaks determinism.
//! * `no-unordered-emit` — `HashMap`/`HashSet` are banned in
//!   `crates/bench/src/experiments`: experiment output must be byte-stable
//!   across runs, so only ordered containers may feed formatted output.
//! * `no-silent-truncation` — `as u8/u16/u32/usize` narrowing casts applied
//!   to byte/rate-named quantities in data-plane crates must use `try_from`
//!   or carry an allow pragma.
//! * `no-stray-print` — `println!`/`eprintln!`/`print!`/`eprint!` are banned
//!   in data-plane crates outside `#[cfg(test)]`: diagnostics belong in the
//!   observability trace (`grouter-obs`), not on stdout, where they would
//!   corrupt byte-compared experiment output.
//! * `no-hot-string-clone` — owned-`String` production (`.to_string()`,
//!   `.to_owned()`, `String::from`, and `.clone()` of `name`-like fields) is
//!   banned in the runtime dispatch path (`crates/runtime/src/exec.rs`):
//!   workflow and function names are interned to dense ids at spec-load
//!   time, and a per-event allocation there regresses the macro benchmark.
//!   Cold setup paths (spec-cache misses) carry a justified allow pragma.
//! * `no-shared-mut-across-shards` — `static mut`, `lazy_static!`/
//!   `thread_local!`-style globals and shared-mutability cells
//!   (`Mutex`/`RwLock`/`Condvar`/`Atomic*`/`RefCell`/`UnsafeCell`/
//!   `OnceLock`/`OnceCell`) are banned in the sharded-engine modules
//!   (`crates/sim/src/shard.rs`, `crates/runtime/src/cluster.rs`): shards
//!   may exchange state only through timestamped envelopes drained at
//!   epoch barriers, because any other cross-shard channel is invisible to
//!   the (timestamp, shard, sequence) ordering that makes runs
//!   thread-count independent. The threaded driver's own epoch plumbing
//!   carries justified allow pragmas.
//!
//! Suppression pragma syntax (same line or the line directly above):
//!
//! ```text
//! // grouter-lint: allow(no-panic-in-dataplane): slot id handed out by this fn
//! ```
//!
//! The justification after `):` is mandatory; a pragma without one (or
//! naming an unknown rule) is itself reported as `bad-pragma` and does not
//! suppress anything.

use std::fmt;

/// Every rule the linter knows about.
pub const RULES: [&str; 7] = [
    "no-panic-in-dataplane",
    "no-wallclock-in-sim",
    "no-unordered-emit",
    "no-silent-truncation",
    "no-stray-print",
    "no-hot-string-clone",
    "no-shared-mut-across-shards",
];

/// Modules that make up the sharded engine (`no-shared-mut-across-shards`
/// scope): cross-shard state must flow through envelopes, not shared cells.
const SHARD_MODULES: [&str; 2] = ["crates/sim/src/shard.rs", "crates/runtime/src/cluster.rs"];

/// Shared-mutability type names banned across shards.
const SHARED_MUT_TYPES: [&str; 8] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "RefCell",
    "UnsafeCell",
    "OnceLock",
    "OnceCell",
    "Cell",
];

/// Crates whose `src/` is considered data-plane code.
const DATAPLANE_CRATES: [&str; 7] = [
    "sim", "topology", "transfer", "store", "mem", "core", "runtime",
];

/// Crates that must run on virtual time only.
const SIM_TIME_CRATES: [&str; 3] = ["sim", "topology", "transfer"];

/// Identifier segments that mark a quantity as bytes/rate-like for
/// `no-silent-truncation`.
const QUANTITY_SEGMENTS: [&str; 8] = [
    "bytes", "byte", "rate", "rates", "bw", "cap", "capacity", "size",
];

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub line: usize,
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.line, self.rule, self.message)
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Sp {
    line: usize,
    tok: Tok,
}

/// Tokenize `src`, returning the token stream and the line comments
/// (pragmas live in line comments only).
fn tokenize(src: &str) -> (Vec<Sp>, Vec<(usize, String)>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && b[j] != '\n' {
                j += 1;
            }
            comments.push((line, b[start..j].iter().collect()));
            i = j;
        } else if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' {
            i = skip_plain_string(&b, i, &mut line);
        } else if (c == 'r' || c == 'b') && string_prefix(&b, i).is_some() {
            let (quote, hashes, raw) = string_prefix(&b, i).unwrap();
            i = if raw {
                skip_raw_string(&b, quote, hashes, &mut line)
            } else {
                skip_plain_string(&b, quote, &mut line)
            };
        } else if c == 'b' && b.get(i + 1) == Some(&'\'') {
            i = skip_char_or_lifetime(&b, i + 1, &mut line);
        } else if c == '\'' {
            i = skip_char_or_lifetime(&b, i, &mut line);
        } else if c.is_alphanumeric() || c == '_' {
            let mut j = i;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            toks.push(Sp {
                line,
                tok: Tok::Ident(b[i..j].iter().collect()),
            });
            i = j;
        } else {
            toks.push(Sp {
                line,
                tok: Tok::Punct(c),
            });
            i += 1;
        }
    }
    (toks, comments)
}

/// If `b[i]` starts a raw/byte string prefix (`r"`, `r#"`, `br"`, `b"`),
/// return (index of the opening quote, hash count, is_raw).
fn string_prefix(b: &[char], i: usize) -> Option<(usize, usize, bool)> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j < b.len() && b[j] == 'r' {
        let mut k = j + 1;
        let mut hashes = 0usize;
        while k < b.len() && b[k] == '#' {
            hashes += 1;
            k += 1;
        }
        if k < b.len() && b[k] == '"' {
            return Some((k, hashes, true));
        }
        None
    } else if b[i] == 'b' && j < b.len() && b[j] == '"' {
        Some((j, 0, false))
    } else {
        None
    }
}

/// Skip a `"..."` string starting at the opening quote; returns the index
/// one past the closing quote.
fn skip_plain_string(b: &[char], open: usize, line: &mut usize) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Skip a raw string whose opening quote is at `open` with `hashes` hashes.
fn skip_raw_string(b: &[char], open: usize, hashes: usize, line: &mut usize) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        if b[j] == '\n' {
            *line += 1;
            j += 1;
        } else if b[j] == '"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return j + 1 + hashes;
        } else {
            j += 1;
        }
    }
    j
}

/// At a `'`: either a char literal (`'x'`, `'\n'`, `'\u{1F600}'`) or a
/// lifetime (`'a`). Returns the index one past the literal.
fn skip_char_or_lifetime(b: &[char], quote: usize, line: &mut usize) -> usize {
    if b.get(quote + 1) == Some(&'\\') {
        let mut j = quote + 2;
        while j < b.len() && b[j] != '\'' {
            if b[j] == '\n' {
                *line += 1;
            }
            j += 1;
        }
        j + 1
    } else if b.get(quote + 2) == Some(&'\'') {
        quote + 3
    } else {
        let mut j = quote + 1;
        while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        j
    }
}

// ---------------------------------------------------------------------------
// #[cfg(test)] exclusion
// ---------------------------------------------------------------------------

fn is_punct(sp: Option<&Sp>, c: char) -> bool {
    matches!(sp, Some(Sp { tok: Tok::Punct(p), .. }) if *p == c)
}

fn is_ident(sp: Option<&Sp>, name: &str) -> bool {
    matches!(sp, Some(Sp { tok: Tok::Ident(s), .. }) if s == name)
}

/// Mark every token covered by a `#[cfg(test)]` item (attribute through the
/// end of the item's brace-delimited body, or its terminating `;`).
fn cfg_test_mask(toks: &[Sp]) -> Vec<bool> {
    let mut ex = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let attr = is_punct(toks.get(i), '#')
            && is_punct(toks.get(i + 1), '[')
            && is_ident(toks.get(i + 2), "cfg")
            && is_punct(toks.get(i + 3), '(')
            && is_ident(toks.get(i + 4), "test")
            && is_punct(toks.get(i + 5), ')')
            && is_punct(toks.get(i + 6), ']');
        if !attr {
            i += 1;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        let mut j = i + 7;
        while is_punct(toks.get(j), '#') && is_punct(toks.get(j + 1), '[') {
            let mut depth = 0i32;
            let mut k = j + 1;
            while k < toks.len() {
                match toks[k].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        // The item body is the first `{...}` block; a `;` first means a
        // body-less item (e.g. `#[cfg(test)] use ...;`).
        let mut k = j;
        let mut open = None;
        while k < toks.len() {
            match toks[k].tok {
                Tok::Punct(';') => break,
                Tok::Punct('{') => {
                    open = Some(k);
                    break;
                }
                _ => k += 1,
            }
        }
        let end = if let Some(open) = open {
            let mut depth = 0i32;
            let mut m = open;
            while m < toks.len() {
                match toks[m].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            m.min(toks.len() - 1)
        } else {
            k.min(toks.len() - 1)
        };
        for slot in ex.iter_mut().take(end + 1).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    ex
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Pragma {
    line: usize,
    rules: Vec<String>,
    justified: bool,
    parse_error: Option<String>,
}

fn parse_pragmas(comments: &[(usize, String)]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (line, text) in comments {
        let t = text.trim();
        let Some(rest) = t.strip_prefix("grouter-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(inner) = rest.strip_prefix("allow(") else {
            out.push(Pragma {
                line: *line,
                rules: Vec::new(),
                justified: false,
                parse_error: Some(format!("expected `allow(<rule>)`, got `{rest}`")),
            });
            continue;
        };
        let Some(close) = inner.find(')') else {
            out.push(Pragma {
                line: *line,
                rules: Vec::new(),
                justified: false,
                parse_error: Some("unterminated `allow(` pragma".to_string()),
            });
            continue;
        };
        let rules: Vec<String> = inner[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut err = None;
        for r in &rules {
            if !RULES.contains(&r.as_str()) {
                err = Some(format!("unknown rule `{r}` in allow pragma"));
            }
        }
        if rules.is_empty() {
            err = Some("empty allow pragma".to_string());
        }
        // Justification: non-empty text after the closing paren, typically
        // introduced by `:`.
        let tail = inner[close + 1..]
            .trim_start_matches([':', '-', ' '])
            .trim();
        out.push(Pragma {
            line: *line,
            rules,
            justified: !tail.is_empty(),
            parse_error: err,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

struct PathInfo {
    crate_name: Option<String>,
    /// Under a `tests/` or `benches/` directory.
    test_dir: bool,
    /// Under `crates/bench/src/experiments`.
    experiments: bool,
    /// The runtime dispatch path (`no-hot-string-clone` scope).
    hot_dispatch: bool,
    /// A sharded-engine module (`no-shared-mut-across-shards` scope).
    shard_module: bool,
}

fn classify(path: &str) -> PathInfo {
    let norm = path.replace('\\', "/");
    let segs: Vec<&str> = norm.split('/').filter(|s| !s.is_empty()).collect();
    let crate_name = segs
        .iter()
        .position(|&s| s == "crates")
        .and_then(|p| segs.get(p + 1))
        .map(|s| s.to_string());
    let test_dir = segs.iter().any(|&s| s == "tests" || s == "benches");
    let experiments = norm.contains("crates/bench/src/experiments");
    let hot_dispatch = norm.ends_with("crates/runtime/src/exec.rs");
    let shard_module = SHARD_MODULES.iter().any(|m| norm.ends_with(m));
    PathInfo {
        crate_name,
        test_dir,
        experiments,
        hot_dispatch,
        shard_module,
    }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Lint one source file. `path` is the path the rules see (fixtures use a
/// `//@ path:` directive to impersonate in-tree locations).
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let info = classify(path);
    let (toks, comments) = tokenize(src);
    let excluded = cfg_test_mask(&toks);
    let pragmas = parse_pragmas(&comments);

    let mut raw: Vec<Diagnostic> = Vec::new();

    let dataplane = info
        .crate_name
        .as_deref()
        .is_some_and(|c| DATAPLANE_CRATES.contains(&c))
        && !info.test_dir;
    let sim_time = info
        .crate_name
        .as_deref()
        .is_some_and(|c| SIM_TIME_CRATES.contains(&c));

    for (i, sp) in toks.iter().enumerate() {
        if excluded[i] {
            continue;
        }
        let Tok::Ident(name) = &sp.tok else { continue };

        if dataplane {
            match name.as_str() {
                "unwrap" | "expect"
                    if is_punct(toks.get(i.wrapping_sub(1)), '.')
                        && is_punct(toks.get(i + 1), '(') =>
                {
                    raw.push(Diagnostic {
                        line: sp.line,
                        rule: "no-panic-in-dataplane".into(),
                        message: format!(
                            "`.{name}()` in data-plane code; return a typed error or add a justified allow pragma"
                        ),
                    });
                }
                "println" | "eprintln" | "print" | "eprint" if is_punct(toks.get(i + 1), '!') => {
                    raw.push(Diagnostic {
                        line: sp.line,
                        rule: "no-stray-print".into(),
                        message: format!(
                            "`{name}!` in data-plane code; emit a trace event through grouter-obs or add a justified allow pragma"
                        ),
                    });
                }
                "panic" | "unreachable" if is_punct(toks.get(i + 1), '!') => {
                    raw.push(Diagnostic {
                        line: sp.line,
                        rule: "no-panic-in-dataplane".into(),
                        message: format!(
                            "`{name}!` in data-plane code; return a typed error or add a justified allow pragma"
                        ),
                    });
                }
                _ => {}
            }

            if name == "as" {
                if let Some(Sp {
                    tok: Tok::Ident(ty),
                    ..
                }) = toks.get(i + 1)
                {
                    if matches!(ty.as_str(), "u8" | "u16" | "u32" | "usize") {
                        if let Some(src_ident) = cast_source_ident(&toks, i) {
                            if is_quantity_ident(&src_ident) {
                                raw.push(Diagnostic {
                                    line: sp.line,
                                    rule: "no-silent-truncation".into(),
                                    message: format!(
                                        "narrowing cast `{src_ident} as {ty}` on a byte/rate quantity; use try_from or add a justified allow pragma"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }

        if sim_time {
            if name == "SystemTime" {
                raw.push(Diagnostic {
                    line: sp.line,
                    rule: "no-wallclock-in-sim".into(),
                    message: "`SystemTime` in a virtual-time crate".into(),
                });
            }
            if name == "Instant"
                && is_punct(toks.get(i + 1), ':')
                && is_punct(toks.get(i + 2), ':')
                && is_ident(toks.get(i + 3), "now")
            {
                raw.push(Diagnostic {
                    line: sp.line,
                    rule: "no-wallclock-in-sim".into(),
                    message: "`Instant::now` in a virtual-time crate".into(),
                });
            }
        }

        if info.hot_dispatch {
            let string_maker = matches!(name.as_str(), "to_string" | "to_owned")
                && is_punct(toks.get(i.wrapping_sub(1)), '.')
                && is_punct(toks.get(i + 1), '(');
            let string_from = name == "String"
                && is_punct(toks.get(i + 1), ':')
                && is_punct(toks.get(i + 2), ':')
                && is_ident(toks.get(i + 3), "from");
            let name_clone = name == "clone"
                && is_punct(toks.get(i.wrapping_sub(1)), '.')
                && is_punct(toks.get(i + 1), '(')
                && matches!(
                    toks.get(i.wrapping_sub(2)).map(|sp| &sp.tok),
                    Some(Tok::Ident(recv)) if recv.split('_').any(|seg| seg == "name")
                );
            if string_maker || string_from || name_clone {
                raw.push(Diagnostic {
                    line: sp.line,
                    rule: "no-hot-string-clone".into(),
                    message: format!(
                        "`{name}` builds an owned String in the runtime dispatch path; use the interned ids (or add a justified allow pragma on a cold setup path)"
                    ),
                });
            }
        }

        if info.shard_module {
            let static_mut = name == "static" && is_ident(toks.get(i + 1), "mut");
            let global_macro = matches!(name.as_str(), "lazy_static" | "thread_local")
                && is_punct(toks.get(i + 1), '!');
            let shared_cell = SHARED_MUT_TYPES.contains(&name.as_str())
                || (name.starts_with("Atomic") && name.len() > "Atomic".len());
            if static_mut || global_macro || shared_cell {
                raw.push(Diagnostic {
                    line: sp.line,
                    rule: "no-shared-mut-across-shards".into(),
                    message: format!(
                        "`{}` is shared mutable state in a sharded-engine module; cross-shard \
state must travel in timestamped envelopes (or add a justified allow pragma)",
                        if static_mut { "static mut" } else { name }
                    ),
                });
            }
        }

        if info.experiments && (name == "HashMap" || name == "HashSet") {
            raw.push(Diagnostic {
                line: sp.line,
                rule: "no-unordered-emit".into(),
                message: format!(
                    "`{name}` in an experiment module; iteration order is unordered — use BTreeMap/BTreeSet"
                ),
            });
        }
    }

    // Apply pragmas: a justified pragma on the same line or the line
    // directly above suppresses that rule there.
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let suppressed = pragmas.iter().any(|p| {
            p.justified
                && p.parse_error.is_none()
                && (p.line == d.line || p.line + 1 == d.line)
                && p.rules.iter().any(|r| r == &d.rule)
        });
        if !suppressed {
            out.push(d);
        }
    }
    for p in &pragmas {
        if let Some(err) = &p.parse_error {
            out.push(Diagnostic {
                line: p.line,
                rule: "bad-pragma".into(),
                message: err.clone(),
            });
        } else if !p.justified {
            out.push(Diagnostic {
                line: p.line,
                rule: "bad-pragma".into(),
                message: "allow pragma without a justification (`allow(<rule>): <why>`)".into(),
            });
        }
    }
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

/// For a cast at token index `as_idx`, find the identifier naming the value
/// being cast: either the ident directly before `as`, or — for a call like
/// `self.total_bytes() as u32` — the ident before the matching `(`.
fn cast_source_ident(toks: &[Sp], as_idx: usize) -> Option<String> {
    if as_idx == 0 {
        return None;
    }
    match &toks[as_idx - 1].tok {
        Tok::Ident(name) => Some(name.clone()),
        Tok::Punct(')') => {
            let mut depth = 0i32;
            let mut j = as_idx - 1;
            loop {
                match toks[j].tok {
                    Tok::Punct(')') => depth += 1,
                    Tok::Punct('(') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            if j == 0 {
                return None;
            }
            match &toks[j - 1].tok {
                Tok::Ident(name) => Some(name.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Does the identifier look like a bytes/rate quantity? Matches whole
/// snake_case segments, so `escape` does not match `cap`.
fn is_quantity_ident(name: &str) -> bool {
    name.split('_')
        .any(|seg| QUANTITY_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_skips_strings_and_comments() {
        let src = format!(
            "// panic! in a comment\n\
             /* .unwrap() in a block comment */\n\
             let s = \"panic!() .unwrap()\";\n\
             let r = r{h}\"unreachable!()\"{h};\n",
            h = "#"
        );
        let d = lint_source("crates/sim/src/x.rs", &src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }\n";
        // Not a real unwrap receiver pattern without `.`? It has `.unwrap(`.
        let d = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-panic-in-dataplane");
    }

    #[test]
    fn unwrap_or_variants_are_allowed() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_excluded() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) { x.unwrap(); panic!(); }\n}\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn pragma_requires_justification() {
        let with = "// grouter-lint: allow(no-panic-in-dataplane): invariant by construction\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        assert!(lint_source("crates/sim/src/x.rs", with).is_empty());
        let without =
            "// grouter-lint: allow(no-panic-in-dataplane)\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        let d = lint_source("crates/sim/src/x.rs", without);
        assert_eq!(d.len(), 2, "{d:?}"); // bad-pragma + unsuppressed unwrap
    }

    #[test]
    fn truncation_segments_not_substrings() {
        let src = "fn f(escape: u64, total_bytes: u64) { let _ = escape as u32; let _ = total_bytes as u64; }\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
        let bad = "fn f(total_bytes: u64) { let _ = total_bytes as u32; }\n";
        let d = lint_source("crates/sim/src/x.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-silent-truncation");
    }

    #[test]
    fn shared_mut_is_banned_in_shard_modules_only() {
        let src = "use std::sync::Mutex;\nstatic mut SEQ: u64 = 0;\nthread_local! { static T: u32 = 0; }\nfn f(x: &std::sync::atomic::AtomicU64) { let _ = x; }\n";
        let d = lint_source("crates/sim/src/shard.rs", src);
        let rules: Vec<_> = d.iter().map(|d| (d.line, d.rule.as_str())).collect();
        assert_eq!(
            rules,
            vec![
                (1, "no-shared-mut-across-shards"),
                (2, "no-shared-mut-across-shards"),
                (3, "no-shared-mut-across-shards"),
                (4, "no-shared-mut-across-shards"),
            ],
            "{d:?}"
        );
        // Same source outside the sharded engine: only dataplane rules apply.
        assert!(lint_source("crates/runtime/src/world.rs", src).is_empty());
        // A justified pragma suppresses the barrier plumbing.
        let ok = "// grouter-lint: allow(no-shared-mut-across-shards): epoch barrier plumbing\nuse std::sync::Mutex;\n";
        assert!(lint_source("crates/runtime/src/cluster.rs", ok).is_empty());
    }

    #[test]
    fn non_dataplane_paths_are_ignored() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }\n";
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        assert!(lint_source("crates/sim/tests/x.rs", src).is_empty());
    }
}
