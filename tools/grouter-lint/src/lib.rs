//! grouter-lint: a zero-dependency lexical linter for the GROUTER workspace.
//!
//! The linter tokenizes Rust sources with a small hand-rolled lexer (no
//! `syn`, no registry dependencies — the build environment is offline) and
//! enforces seven project rules with `path:line:col` diagnostics:
//!
//! * `no-panic-in-dataplane` — `unwrap`/`expect`/`panic!`/`unreachable!` are
//!   banned in the data-plane crates (`sim`, `topology`, `transfer`, `store`,
//!   `mem`, `core`, `runtime`) outside `#[cfg(test)]` regions, `tests/` and
//!   `benches/` directories. Silent throughput loss beats a crash in a data
//!   plane; recoverable paths must carry typed errors, unavoidable
//!   invariants a justified pragma.
//! * `no-wallclock-in-sim` — `Instant::now` / `SystemTime` are banned in
//!   `sim`, `topology`, `transfer`: the simulation is virtual-time only and
//!   any wall-clock read breaks determinism.
//! * `no-unordered-emit` — `HashMap`/`HashSet` are banned in
//!   `crates/bench/src/experiments`: experiment output must be byte-stable
//!   across runs, so only ordered containers may feed formatted output.
//! * `no-silent-truncation` — `as u8/u16/u32/usize` narrowing casts applied
//!   to byte/rate-named quantities in data-plane crates must use `try_from`
//!   or carry an allow pragma.
//! * `no-stray-print` — `println!`/`eprintln!`/`print!`/`eprint!` are banned
//!   in data-plane crates outside `#[cfg(test)]`: diagnostics belong in the
//!   observability trace (`grouter-obs`), not on stdout, where they would
//!   corrupt byte-compared experiment output.
//! * `no-hot-string-clone` — owned-`String` production (`.to_string()`,
//!   `.to_owned()`, `String::from`, and `.clone()` of `name`-like fields) is
//!   banned in the runtime dispatch path (`crates/runtime/src/exec.rs`):
//!   workflow and function names are interned to dense ids at spec-load
//!   time, and a per-event allocation there regresses the macro benchmark.
//!   Cold setup paths (spec-cache misses) carry a justified allow pragma.
//! * `no-shared-mut-across-shards` — `static mut`, `lazy_static!`/
//!   `thread_local!`-style globals and shared-mutability cells
//!   (`Mutex`/`RwLock`/`Condvar`/`Atomic*`/`RefCell`/`UnsafeCell`/
//!   `OnceLock`/`OnceCell`) are banned in the sharded-engine modules
//!   (`crates/sim/src/shard.rs`, `crates/runtime/src/cluster.rs`): shards
//!   may exchange state only through timestamped envelopes drained at
//!   epoch barriers, because any other cross-shard channel is invisible to
//!   the (timestamp, shard, sequence) ordering that makes runs
//!   thread-count independent. The threaded driver's own epoch plumbing
//!   carries justified allow pragmas.
//!
//! Suppression pragma syntax (same line or the line directly above):
//!
//! ```text
//! // grouter-lint: allow(no-panic-in-dataplane): slot id handed out by this fn
//! ```
//!
//! The justification after `):` is mandatory; a pragma without one (or
//! naming an unknown rule) is itself reported as `bad-pragma` and does not
//! suppress anything.
//!
//! The lexer, pragma parser, diagnostic type and file walker live in
//! [`common`], shared with `grouter-analyze` so the two tools cannot drift.

pub mod common;

pub use common::Diagnostic;
use common::{cfg_test_mask, is_ident, is_punct, parse_pragmas, tokenize, Sp, Tok};

/// Every rule the linter knows about.
pub const RULES: [&str; 7] = [
    "no-panic-in-dataplane",
    "no-wallclock-in-sim",
    "no-unordered-emit",
    "no-silent-truncation",
    "no-stray-print",
    "no-hot-string-clone",
    "no-shared-mut-across-shards",
];

/// The pragma prefix this tool answers to.
pub const PRAGMA_PREFIX: &str = "grouter-lint:";

/// Modules that make up the sharded engine (`no-shared-mut-across-shards`
/// scope): cross-shard state must flow through envelopes, not shared cells.
const SHARD_MODULES: [&str; 3] = [
    "crates/sim/src/shard.rs",
    "crates/runtime/src/cluster.rs",
    "crates/llm/src/world.rs",
];

/// Shared-mutability type names banned across shards.
const SHARED_MUT_TYPES: [&str; 8] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "RefCell",
    "UnsafeCell",
    "OnceLock",
    "OnceCell",
    "Cell",
];

/// Crates whose `src/` is considered data-plane code.
const DATAPLANE_CRATES: [&str; 9] = [
    "sim", "topology", "transfer", "store", "mem", "core", "runtime", "ctl", "llm",
];

/// Crates that must run on virtual time only.
const SIM_TIME_CRATES: [&str; 5] = ["sim", "topology", "transfer", "ctl", "llm"];

/// Identifier segments that mark a quantity as bytes/rate-like for
/// `no-silent-truncation`.
const QUANTITY_SEGMENTS: [&str; 8] = [
    "bytes", "byte", "rate", "rates", "bw", "cap", "capacity", "size",
];

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

struct PathInfo {
    crate_name: Option<String>,
    /// Under a `tests/` or `benches/` directory.
    test_dir: bool,
    /// Under `crates/bench/src/experiments`.
    experiments: bool,
    /// The runtime dispatch path (`no-hot-string-clone` scope).
    hot_dispatch: bool,
    /// A sharded-engine module (`no-shared-mut-across-shards` scope).
    shard_module: bool,
}

fn classify(path: &str) -> PathInfo {
    let norm = path.replace('\\', "/");
    let segs: Vec<&str> = norm.split('/').filter(|s| !s.is_empty()).collect();
    let crate_name = segs
        .iter()
        .position(|&s| s == "crates")
        .and_then(|p| segs.get(p + 1))
        .map(|s| s.to_string());
    let test_dir = segs.iter().any(|&s| s == "tests" || s == "benches");
    let experiments = norm.contains("crates/bench/src/experiments");
    let hot_dispatch = norm.ends_with("crates/runtime/src/exec.rs");
    let shard_module = SHARD_MODULES.iter().any(|m| norm.ends_with(m));
    PathInfo {
        crate_name,
        test_dir,
        experiments,
        hot_dispatch,
        shard_module,
    }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Lint one source file. `path` is the path the rules see (fixtures use a
/// `//@ path:` directive to impersonate in-tree locations).
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let info = classify(path);
    let (toks, comments) = tokenize(src);
    let excluded = cfg_test_mask(&toks);
    let pragmas = parse_pragmas(&comments, PRAGMA_PREFIX, &RULES);

    let mut raw: Vec<Diagnostic> = Vec::new();

    let dataplane = info
        .crate_name
        .as_deref()
        .is_some_and(|c| DATAPLANE_CRATES.contains(&c))
        && !info.test_dir;
    let sim_time = info
        .crate_name
        .as_deref()
        .is_some_and(|c| SIM_TIME_CRATES.contains(&c));

    for (i, sp) in toks.iter().enumerate() {
        if excluded[i] {
            continue;
        }
        let Tok::Ident(name) = &sp.tok else { continue };

        if dataplane {
            match name.as_str() {
                "unwrap" | "expect"
                    if is_punct(toks.get(i.wrapping_sub(1)), '.')
                        && is_punct(toks.get(i + 1), '(') =>
                {
                    raw.push(Diagnostic {
                        line: sp.line,
                        col: sp.col,
                        rule: "no-panic-in-dataplane".into(),
                        message: format!(
                            "`.{name}()` in data-plane code; return a typed error or add a justified allow pragma"
                        ),
                    });
                }
                "println" | "eprintln" | "print" | "eprint" if is_punct(toks.get(i + 1), '!') => {
                    raw.push(Diagnostic {
                        line: sp.line,
                        col: sp.col,
                        rule: "no-stray-print".into(),
                        message: format!(
                            "`{name}!` in data-plane code; emit a trace event through grouter-obs or add a justified allow pragma"
                        ),
                    });
                }
                "panic" | "unreachable" if is_punct(toks.get(i + 1), '!') => {
                    raw.push(Diagnostic {
                        line: sp.line,
                        col: sp.col,
                        rule: "no-panic-in-dataplane".into(),
                        message: format!(
                            "`{name}!` in data-plane code; return a typed error or add a justified allow pragma"
                        ),
                    });
                }
                _ => {}
            }

            if name == "as" {
                if let Some(Sp {
                    tok: Tok::Ident(ty),
                    ..
                }) = toks.get(i + 1)
                {
                    if matches!(ty.as_str(), "u8" | "u16" | "u32" | "usize") {
                        if let Some(src_ident) = cast_source_ident(&toks, i) {
                            if is_quantity_ident(&src_ident) {
                                raw.push(Diagnostic {
                                    line: sp.line,
                                    col: sp.col,
                                    rule: "no-silent-truncation".into(),
                                    message: format!(
                                        "narrowing cast `{src_ident} as {ty}` on a byte/rate quantity; use try_from or add a justified allow pragma"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }

        if sim_time {
            if name == "SystemTime" {
                raw.push(Diagnostic {
                    line: sp.line,
                    col: sp.col,
                    rule: "no-wallclock-in-sim".into(),
                    message: "`SystemTime` in a virtual-time crate".into(),
                });
            }
            if name == "Instant"
                && is_punct(toks.get(i + 1), ':')
                && is_punct(toks.get(i + 2), ':')
                && is_ident(toks.get(i + 3), "now")
            {
                raw.push(Diagnostic {
                    line: sp.line,
                    col: sp.col,
                    rule: "no-wallclock-in-sim".into(),
                    message: "`Instant::now` in a virtual-time crate".into(),
                });
            }
        }

        if info.hot_dispatch {
            let string_maker = matches!(name.as_str(), "to_string" | "to_owned")
                && is_punct(toks.get(i.wrapping_sub(1)), '.')
                && is_punct(toks.get(i + 1), '(');
            let string_from = name == "String"
                && is_punct(toks.get(i + 1), ':')
                && is_punct(toks.get(i + 2), ':')
                && is_ident(toks.get(i + 3), "from");
            let name_clone = name == "clone"
                && is_punct(toks.get(i.wrapping_sub(1)), '.')
                && is_punct(toks.get(i + 1), '(')
                && matches!(
                    toks.get(i.wrapping_sub(2)).map(|sp| &sp.tok),
                    Some(Tok::Ident(recv)) if recv.split('_').any(|seg| seg == "name")
                );
            if string_maker || string_from || name_clone {
                raw.push(Diagnostic {
                    line: sp.line,
                    col: sp.col,
                    rule: "no-hot-string-clone".into(),
                    message: format!(
                        "`{name}` builds an owned String in the runtime dispatch path; use the interned ids (or add a justified allow pragma on a cold setup path)"
                    ),
                });
            }
        }

        if info.shard_module {
            let static_mut = name == "static" && is_ident(toks.get(i + 1), "mut");
            let global_macro = matches!(name.as_str(), "lazy_static" | "thread_local")
                && is_punct(toks.get(i + 1), '!');
            let shared_cell = SHARED_MUT_TYPES.contains(&name.as_str())
                || (name.starts_with("Atomic") && name.len() > "Atomic".len());
            if static_mut || global_macro || shared_cell {
                raw.push(Diagnostic {
                    line: sp.line,
                    col: sp.col,
                    rule: "no-shared-mut-across-shards".into(),
                    message: format!(
                        "`{}` is shared mutable state in a sharded-engine module; cross-shard \
state must travel in timestamped envelopes (or add a justified allow pragma)",
                        if static_mut { "static mut" } else { name }
                    ),
                });
            }
        }

        if info.experiments && (name == "HashMap" || name == "HashSet") {
            raw.push(Diagnostic {
                line: sp.line,
                col: sp.col,
                rule: "no-unordered-emit".into(),
                message: format!(
                    "`{name}` in an experiment module; iteration order is unordered — use BTreeMap/BTreeSet"
                ),
            });
        }
    }

    // Apply pragmas: a justified pragma on the same line or the line
    // directly above suppresses that rule there.
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let suppressed = pragmas.iter().any(|p| {
            p.justified
                && p.parse_error.is_none()
                && (p.line == d.line || p.line + 1 == d.line)
                && p.rules.iter().any(|r| r == &d.rule)
        });
        if !suppressed {
            out.push(d);
        }
    }
    for p in &pragmas {
        if let Some(err) = &p.parse_error {
            out.push(Diagnostic {
                line: p.line,
                col: 1,
                rule: "bad-pragma".into(),
                message: err.clone(),
            });
        } else if !p.justified {
            out.push(Diagnostic {
                line: p.line,
                col: 1,
                rule: "bad-pragma".into(),
                message: "allow pragma without a justification (`allow(<rule>): <why>`)".into(),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    out
}

/// For a cast at token index `as_idx`, find the identifier naming the value
/// being cast: either the ident directly before `as`, or — for a call like
/// `self.total_bytes() as u32` — the ident before the matching `(`.
fn cast_source_ident(toks: &[Sp], as_idx: usize) -> Option<String> {
    if as_idx == 0 {
        return None;
    }
    match &toks[as_idx - 1].tok {
        Tok::Ident(name) => Some(name.clone()),
        Tok::Punct(')') => {
            let mut depth = 0i32;
            let mut j = as_idx - 1;
            loop {
                match toks[j].tok {
                    Tok::Punct(')') => depth += 1,
                    Tok::Punct('(') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            if j == 0 {
                return None;
            }
            match &toks[j - 1].tok {
                Tok::Ident(name) => Some(name.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Does the identifier look like a bytes/rate quantity? Matches whole
/// snake_case segments, so `escape` does not match `cap`.
fn is_quantity_ident(name: &str) -> bool {
    name.split('_')
        .any(|seg| QUANTITY_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_skips_strings_and_comments() {
        let src = format!(
            "// panic! in a comment\n\
             /* .unwrap() in a block comment */\n\
             let s = \"panic!() .unwrap()\";\n\
             let r = r{h}\"unreachable!()\"{h};\n",
            h = "#"
        );
        let d = lint_source("crates/sim/src/x.rs", &src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }\n";
        // Not a real unwrap receiver pattern without `.`? It has `.unwrap(`.
        let d = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-panic-in-dataplane");
    }

    #[test]
    fn diagnostics_carry_columns() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(d.len(), 1);
        // `unwrap` starts at 1-based column 33.
        assert_eq!((d[0].line, d[0].col), (1, 33));
        assert_eq!(
            format!("crates/sim/src/x.rs:{}", d[0]),
            format!(
                "crates/sim/src/x.rs:1:33: [no-panic-in-dataplane] {}",
                d[0].message
            )
        );
    }

    #[test]
    fn unwrap_or_variants_are_allowed() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_excluded() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) { x.unwrap(); panic!(); }\n}\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn pragma_requires_justification() {
        let with = "// grouter-lint: allow(no-panic-in-dataplane): invariant by construction\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        assert!(lint_source("crates/sim/src/x.rs", with).is_empty());
        let without =
            "// grouter-lint: allow(no-panic-in-dataplane)\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        let d = lint_source("crates/sim/src/x.rs", without);
        assert_eq!(d.len(), 2, "{d:?}"); // bad-pragma + unsuppressed unwrap
    }

    #[test]
    fn truncation_segments_not_substrings() {
        let src = "fn f(escape: u64, total_bytes: u64) { let _ = escape as u32; let _ = total_bytes as u64; }\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
        let bad = "fn f(total_bytes: u64) { let _ = total_bytes as u32; }\n";
        let d = lint_source("crates/sim/src/x.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-silent-truncation");
    }

    #[test]
    fn shared_mut_is_banned_in_shard_modules_only() {
        let src = "use std::sync::Mutex;\nstatic mut SEQ: u64 = 0;\nthread_local! { static T: u32 = 0; }\nfn f(x: &std::sync::atomic::AtomicU64) { let _ = x; }\n";
        let d = lint_source("crates/sim/src/shard.rs", src);
        let rules: Vec<_> = d.iter().map(|d| (d.line, d.rule.as_str())).collect();
        assert_eq!(
            rules,
            vec![
                (1, "no-shared-mut-across-shards"),
                (2, "no-shared-mut-across-shards"),
                (3, "no-shared-mut-across-shards"),
                (4, "no-shared-mut-across-shards"),
            ],
            "{d:?}"
        );
        // Same source outside the sharded engine: only dataplane rules apply.
        assert!(lint_source("crates/runtime/src/world.rs", src).is_empty());
        // A justified pragma suppresses the barrier plumbing.
        let ok = "// grouter-lint: allow(no-shared-mut-across-shards): epoch barrier plumbing\nuse std::sync::Mutex;\n";
        assert!(lint_source("crates/runtime/src/cluster.rs", ok).is_empty());
    }

    #[test]
    fn non_dataplane_paths_are_ignored() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }\n";
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        assert!(lint_source("crates/sim/tests/x.rs", src).is_empty());
    }
}
