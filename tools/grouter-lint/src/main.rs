//! CLI driver: `cargo run -p grouter-lint -- crates` lints every `.rs`
//! file under the given roots (default `crates`) and exits nonzero when any
//! diagnostic remains.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<String> = if args.is_empty() {
        vec!["crates".to_string()]
    } else {
        args
    };

    let mut files: Vec<PathBuf> = Vec::new();
    for root in &roots {
        let p = Path::new(root);
        if p.is_file() {
            files.push(p.to_path_buf());
        } else if p.is_dir() {
            walk(p, &mut files);
        } else {
            eprintln!("grouter-lint: no such path: {root}");
            return ExitCode::from(2);
        }
    }
    files.sort();

    let mut violations = 0usize;
    for file in &files {
        let display = file.to_string_lossy().replace('\\', "/");
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("grouter-lint: cannot read {display}: {e}");
                violations += 1;
                continue;
            }
        };
        for d in grouter_lint::lint_source(&display, &src) {
            println!("{display}:{d}");
            violations += 1;
        }
    }

    if violations > 0 {
        eprintln!(
            "grouter-lint: {violations} violation(s) across {} file(s)",
            files.len()
        );
        ExitCode::FAILURE
    } else {
        println!("grouter-lint: clean ({} files)", files.len());
        ExitCode::SUCCESS
    }
}
