//! CLI driver: `cargo run -p grouter-lint -- crates` lints every `.rs`
//! file under the given roots (default `crates`) and exits nonzero when any
//! diagnostic remains. Diagnostics print as `path:line:col: [rule] message`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<String> = if args.is_empty() {
        vec!["crates".to_string()]
    } else {
        args
    };

    let files = match grouter_lint::common::walk_rs_files(&roots) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("grouter-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut violations = 0usize;
    for file in &files {
        let display = file.to_string_lossy().replace('\\', "/");
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("grouter-lint: cannot read {display}: {e}");
                violations += 1;
                continue;
            }
        };
        for d in grouter_lint::lint_source(&display, &src) {
            println!("{display}:{d}");
            violations += 1;
        }
    }

    if violations > 0 {
        eprintln!(
            "grouter-lint: {violations} violation(s) across {} file(s)",
            files.len()
        );
        ExitCode::FAILURE
    } else {
        println!("grouter-lint: clean ({} files)", files.len());
        ExitCode::SUCCESS
    }
}
