//! Fixture harness: each `tests/fixtures/*.rs` file starts with a
//! `//@ path: <virtual path>` directive naming the in-tree location the
//! rules should see, and a sibling `.expected` file lists the diagnostics
//! as `<line> <rule>` pairs (one per line, `#` comments allowed, empty for
//! a clean file). The harness lints every fixture and compares the exact
//! (line, rule) multisets.

use std::fs;
use std::path::Path;

fn parse_expected(src: &str, from: &Path) -> Vec<(usize, String)> {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (line, rule) = l
                .split_once(' ')
                .unwrap_or_else(|| panic!("{from:?}: expected `<line> <rule>`, got `{l}`"));
            let line = line
                .parse()
                .unwrap_or_else(|_| panic!("{from:?}: bad line number in `{l}`"));
            (line, rule.trim().to_string())
        })
        .collect()
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut checked = 0usize;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("fixture is readable");
        let virtual_path = src
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("//@ path:"))
            .unwrap_or_else(|| panic!("{path:?} is missing its `//@ path:` header"))
            .trim();

        let mut got: Vec<(usize, String)> = grouter_lint::lint_source(virtual_path, &src)
            .into_iter()
            .map(|d| (d.line, d.rule))
            .collect();

        let expected_path = path.with_extension("expected");
        let expected_src = fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("missing expectations file {expected_path:?}"));
        let mut want = parse_expected(&expected_src, &expected_path);

        got.sort();
        want.sort();
        assert_eq!(
            got, want,
            "diagnostics mismatch for fixture {path:?} (as `{virtual_path}`)"
        );
        checked += 1;
    }
    assert!(
        checked >= 8,
        "expected at least 8 fixtures, found {checked}"
    );
}
