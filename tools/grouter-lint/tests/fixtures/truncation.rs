//@ path: crates/store/src/fixture.rs
// Narrowing casts on byte/rate quantities need try_from or a pragma.

fn narrow(total_bytes: u64, rate_bps: u64, escape: u64, len: u64) -> u32 {
    let a = total_bytes as u32;
    let b = rate_bps as u16;
    let c = escape as u32;
    let d = len as u32;
    let e = total_bytes as u64;
    a + b as u32 + c + d + e as u32
}

fn call_site(p: &Plan) -> u32 {
    p.total_bytes() as u32
}

fn allowed(capacity: u64) -> u32 {
    // grouter-lint: allow(no-silent-truncation): fits in u32 by construction
    capacity as u32
}
