//@ path: crates/mem/src/fixture.rs
// Unjustified and malformed pragmas are themselves diagnostics and
// suppress nothing.

fn unjustified(x: Option<u32>) -> u32 {
    // grouter-lint: allow(no-panic-in-dataplane)
    x.unwrap()
}

fn unknown_rule(x: Option<u32>) -> u32 {
    // grouter-lint: allow(no-such-rule): not a rule the linter knows
    x.unwrap()
}

fn malformed() {
    // grouter-lint: deny(no-panic-in-dataplane): only allow() exists
}
