//@ path: crates/core/src/fixture.rs
// Panics in strings, comments and raw strings are not code.

fn text() -> String {
    // a comment mentioning .unwrap() and panic!()
    /* block comment: unreachable!() HashMap Instant::now */
    let plain = "call .unwrap() then panic!(\"no\")";
    let raw = r#"SystemTime and .expect("x") live here"#;
    format!("{plain}{raw}")
}
