//@ path: crates/runtime/src/fixture_fault.rs
// Recovery-engine-shaped code. The no-silent-stall contract means every
// fault must surface a typed outcome: a panic mid-recovery-wave or a
// narrowed loss counter is exactly what the dataplane rules must flag.

fn on_gpu_fail(failed: Option<usize>) -> usize {
    failed.unwrap()
}

fn quarantined(lost_bytes: u64) -> u32 {
    lost_bytes as u32
}

fn retry_backoff(attempt: Option<u32>) -> u32 {
    // grouter-lint: allow(no-panic-in-dataplane): attempt is stamped by the scheduler before the wake is queued; a miss is a scheduler bug
    attempt.expect("stamped")
}
