//@ path: crates/bench/src/experiments/fixture.rs
// Experiment modules must emit in deterministic order.

use std::collections::BTreeMap;
use std::collections::{HashMap, HashSet};

fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let ordered: BTreeMap<u32, u32> = BTreeMap::new();
    let mut seen = HashSet::new();
    seen.extend(xs.iter().copied());
    let _ = ordered;
    HashMap::new()
}
