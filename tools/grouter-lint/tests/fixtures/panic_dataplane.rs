//@ path: crates/sim/src/fixture.rs
// Seeded violations for no-panic-in-dataplane.

fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn named(x: Option<u32>) -> u32 {
    x.expect("always present")
}

fn boom() {
    panic!("invariant");
}

fn cold() -> ! {
    unreachable!()
}

fn soft(x: Option<u32>) -> u32 {
    x.unwrap_or(0).max(x.unwrap_or_default())
}
