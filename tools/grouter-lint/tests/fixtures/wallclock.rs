//@ path: crates/topology/src/fixture.rs
// Wall-clock reads are banned in virtual-time crates.

use std::time::Instant;
use std::time::SystemTime;

fn stamp() -> f64 {
    let t = Instant::now();
    let _ = SystemTime::now();
    t.elapsed().as_secs_f64()
}
