//@ path: crates/runtime/src/world.rs
// The shared-mut ban is scoped to the sharded-engine modules; ordinary
// runtime code may use interior mutability (dataplane rules still apply).

use std::sync::Mutex;

struct Cache {
    slots: Mutex<Vec<u64>>,
}

impl Cache {
    fn len(&self) -> usize {
        self.slots.lock().map(|s| s.len()).unwrap_or(0)
    }
}
