//@ path: crates/sim/src/shard.rs
// Shards may exchange state only through timestamped envelopes: globals
// and shared-mutability cells are invisible to the (timestamp, shard,
// sequence) ordering and break thread-count independence.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static mut NEXT_SEQ: u64 = 0;

lazy_static! {
    static ref REGISTRY: Vec<u32> = Vec::new();
}

thread_local! {
    static SCRATCH: RefCell<Vec<u8>> = RefCell::new(Vec::new());
}

struct CrossShardCounter {
    hits: AtomicU64,
}

impl CrossShardCounter {
    fn bump(&self) {
        self.hits.fetch_add(1, Ordering::SeqCst);
    }
}

// grouter-lint: allow(no-shared-mut-across-shards): worker handoff slots for the epoch barrier; determinism comes from the envelope sort, not lock order
fn handoff(slots: &[Mutex<Vec<u64>>]) -> usize {
    slots.len()
}

// `Barrier` and `Ordering` are pure synchronization, not shared data —
// they are not flagged.
fn sync_only(b: &std::sync::Barrier) {
    b.wait();
}
