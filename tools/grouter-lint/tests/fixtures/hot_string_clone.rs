//@ path: crates/runtime/src/exec.rs
// Owned-String production is banned in the runtime dispatch path: names are
// interned to dense ids at spec-load time.

fn dispatch_hot(spec_name: &str, wf: &Wf) -> u64 {
    let owned = spec_name.to_string();
    let again = spec_name.to_owned();
    let from = String::from(spec_name);
    let cloned = wf.name.clone();
    let snake = wf.wf_name.clone();
    (owned.len() + again.len() + from.len() + cloned.len() + snake.len()) as u64
}

fn cold_setup(spec_name: &str) -> String {
    // grouter-lint: allow(no-hot-string-clone): spec-cache miss, once per spec
    spec_name.to_string()
}

fn fine(wf: &Wf) -> (u32, std::sync::Arc<[u64]>) {
    // Interned ids and Arc handles clone without touching String.
    (wf.wf_id, wf.fn_ids.clone())
}

struct Wf {
    name: String,
    wf_name: String,
    wf_id: u32,
    fn_ids: std::sync::Arc<[u64]>,
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_clone() {
        let s = "x".to_string();
        assert_eq!(s.clone(), s);
    }
}
