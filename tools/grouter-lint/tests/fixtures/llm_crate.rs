//@ path: crates/llm/src/fixture.rs
// The LLM serving crate is data-plane *and* sim-time scoped: panics and
// wall clocks are both banned outside #[cfg(test)].

use std::time::Instant;

fn tail_bytes(blocks: &[f64]) -> f64 {
    *blocks.last().unwrap()
}

fn stamp() -> Instant {
    Instant::now()
}

fn narrow(kv_bytes: f64) -> u32 {
    kv_bytes as u32
}

fn soft(blocks: &[f64]) -> f64 {
    blocks.first().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_anything_goes() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
        Option::<u32>::None.unwrap_or_default();
    }
}
