//@ path: crates/runtime/src/fixture.rs
// #[cfg(test)] items are exempt from the data-plane rules.

fn hot(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    fn helper(x: Option<u32>) -> u32 {
        x.unwrap()
    }

    #[test]
    fn boom() {
        panic!("fine in tests");
    }
}
