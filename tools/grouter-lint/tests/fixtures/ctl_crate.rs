//@ path: crates/ctl/src/fixture.rs
// The control plane is data-plane *and* sim-time scoped: panics and wall
// clocks are both banned outside #[cfg(test)].

use std::time::Instant;

fn pick(view: &[u32]) -> u32 {
    *view.iter().min().unwrap()
}

fn stamp() -> Instant {
    Instant::now()
}

fn soft(view: &[u32]) -> u32 {
    view.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_anything_goes() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
        Option::<u32>::None.unwrap_or_default();
    }
}
