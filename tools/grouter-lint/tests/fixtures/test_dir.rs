//@ path: crates/sim/tests/fixture.rs
// Integration tests and benches may panic freely.

fn assert_helper(x: Option<u32>) -> u32 {
    x.unwrap()
}
