//@ path: crates/transfer/src/fixture.rs
// Justified pragmas suppress on the same line or the line directly above.

fn above(x: Option<u32>) -> u32 {
    // grouter-lint: allow(no-panic-in-dataplane): fixture invariant
    x.unwrap()
}

fn inline(x: Option<u32>) -> u32 {
    x.unwrap() // grouter-lint: allow(no-panic-in-dataplane): fixture invariant
}

fn too_far(x: Option<u32>) -> u32 {
    // grouter-lint: allow(no-panic-in-dataplane): two lines up does not count

    x.unwrap()
}

fn wrong_rule(total_bytes: u64) -> u32 {
    // grouter-lint: allow(no-panic-in-dataplane): names a rule that did not fire here
    total_bytes as u32
}
