//@ path: crates/transfer/src/debug.rs
//! Fixture: stray prints in a data-plane crate.

pub fn noisy(bytes: f64) {
    println!("transferring {bytes} bytes");
    eprintln!("warning: slow path");
    print!("partial");
    eprint!("partial err");
}

pub fn allowed(bytes: f64) {
    // grouter-lint: allow(no-stray-print): one-shot calibration tool output, never runs inside the simulator
    println!("calibrated at {bytes}");
}

/// A `println` identifier without the bang is not a macro invocation.
pub fn not_a_macro() {
    let println = 3;
    let _ = println;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("test output is exempt");
    }
}
